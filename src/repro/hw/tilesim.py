"""Tile-level execution of a converted network on the processor.

Two levels of fidelity beyond the analytic model of
:mod:`repro.hw.processor`, both expressed as strategies over the shared
:mod:`repro.engine` layer walk:

* :class:`FixedPointInference` — runs every synaptic product through the
  log PE's integer datapath (Eq. 17: log-domain add + frac LUT + shift)
  with a fixed-point membrane accumulator, exactly as the PE array would.
  Comparing its predictions against the float value-domain evaluation
  validates the datapath precision choices (frac LUT width, accumulator
  bits).  Registered as the ``fixed-point`` coding scheme.
* :class:`TiledCycleModel` — executes a layer the way the chip does:
  output neurons in 128-wide tiles, input spikes sorted by the min-find
  unit and streamed once per tile, membranes drained through the PPU and
  the spike-encoder FSM per tile.  Cycle counts come from the *actual*
  encoder FSM run, not an estimate; the spike trains it propagates are
  the engine-produced ones (affine map, pooling and spike encoding all
  come from the shared executor primitives).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..cat.convert import ConvertedSNN, LayerSpec
from ..cat.kernels import NO_SPIKE, Base2Kernel
from ..engine import executor
from ..engine.executor import (
    ExecutionContext,
    SpikeTrainScheme,
    validate_backend,
)
from ..engine.plan import PlanSet, choose_backend, scatter_add_rows
from ..engine.registry import register_scheme
from ..events import EventStream, conv_offset_coverage, scatter_chunks
from ..quant.logquant import LogQuantConfig, quantize_tensor
from ..quant.lut import LogDomainPE, required_frac_bits
from ..snn.spikes import SpikeTrain
from ..tensor import im2col
from .config import HwConfig
from .input_generator import InputGenerator
from .spike_encoder import SpikeEncoder


# ----------------------------------------------------------------------
# Fixed-point datapath inference
# ----------------------------------------------------------------------

@dataclass
class FixedPointReport:
    """Outcome of a fixed-point run against the float reference."""

    predictions: np.ndarray
    reference_predictions: np.ndarray
    max_membrane_drift: float

    @property
    def agreement(self) -> float:
        return float((self.predictions == self.reference_predictions).mean())


class FixedPointInference(SpikeTrainScheme):
    """Run a ConvertedSNN through the integer log-PE datapath.

    Weights are log-quantised (grid-aligned FSR so the PE operands are
    exact), activations arrive as spike times (log2 grid by
    construction), and every product is LUT+shift fixed point.  Biases
    are added in fixed point at the accumulator scale, mirroring the PPU.
    """

    scheme_name = "fixed-point"

    def __init__(self, snn: ConvertedSNN, cfg: Optional[HwConfig] = None,
                 weight_config: Optional[LogQuantConfig] = None,
                 precision_bits: int = 16, backend: str = "dense",
                 plans: Optional[PlanSet] = None):
        self.snn = snn
        self.backend = validate_backend(backend)
        # compiled event plans: the integer datapath reuses their conv
        # coverage tables (the weights themselves stay quantised)
        self.plans = plans if plans is not None else PlanSet()
        self.cfg = cfg or HwConfig(window=snn.config.window,
                                   tau=snn.config.tau)
        if not math.log2(snn.config.tau).is_integer():
            raise ValueError(
                f"tau={snn.config.tau} violates Eq. 18; the log PE needs "
                "a power-of-two tau")
        self.weight_config = weight_config or LogQuantConfig(
            bits=self.cfg.weight_bits, z_w=1, align_fsr=True)
        frac = max(required_frac_bits(snn.config.tau, self.weight_config.z_w),
                   1)
        self.pe = LogDomainPE(frac_bits=frac, precision_bits=precision_bits)
        self.kernel = Base2Kernel(tau=snn.config.tau)
        self._quantized = {
            id(spec): quantize_tensor(spec.weight, self.weight_config)
            for spec in snn.layers if spec.is_weight_layer
        }

    # ------------------------------------------------------------------
    def _products_linear(self, times: np.ndarray, qt) -> np.ndarray:
        """Fixed-point PSP sums for a linear layer.

        ``times``: (N, in) spike times.  Returns (N, out) accumulator
        values (int64 at the PE scale).
        """
        n, d_in = times.shape
        d_out = qt.codes.shape[0]
        x_log2 = -times / self.snn.config.tau  # log2 of decoded inputs
        fired = times != NO_SPIKE
        w_log2 = qt.log2_magnitudes  # (out, in)
        w_nonzero = qt.codes >= 0
        acc = np.zeros((n, d_out), dtype=np.int64)
        xc = self.pe.encode_log2(x_log2)
        wc = self.pe.encode_log2(w_log2)
        for j in range(d_out):
            active = fired & w_nonzero[j][None, :]
            if not active.any():
                continue
            prods = self.pe.multiply(
                xc, np.broadcast_to(wc[j], xc.shape),
                np.broadcast_to(qt.signs[j], xc.shape),
            )
            acc[:, j] = np.where(active, prods, 0).sum(axis=1)
        return acc

    def _products_linear_events(self, stream: EventStream,
                                qt) -> np.ndarray:
        """Event-driven fixed-point PSP sums for a linear layer.

        Same integer products as :meth:`_products_linear`, but computed
        as a scatter over only the spikes that occurred — and since the
        accumulator arithmetic is integer, the two paths are *bitwise*
        identical, not merely close.
        """
        n, d_in = stream.shape
        d_out = qt.codes.shape[0]
        acc = np.zeros((n, d_out), dtype=np.int64)
        if not stream.num_events:
            return acc
        sample, j = stream.unravel()
        xc = self.pe.encode_log2(-stream.times / self.snn.config.tau)
        wc = self.pe.encode_log2(qt.log2_magnitudes)
        w_nonzero = qt.codes >= 0
        # chunk the (events x outputs) product block to bound memory;
        # the scatter itself is the engine's shared segment-sum kernel
        for sl in scatter_chunks(stream.num_events, d_out):
            js = j[sl]
            prods = self.pe.multiply(xc[sl][:, None], wc[:, js].T,
                                     qt.signs[:, js].T)
            scatter_add_rows(acc, sample[sl],
                             np.where(w_nonzero[:, js].T, prods, 0))
        return acc

    def _products_conv_events(self, stream: EventStream, qt,
                              spec: LayerSpec,
                              plan=None) -> np.ndarray:
        """Event-driven fixed-point PSP sums for a conv layer.

        Each spike event scatters its integer products through the K*K
        kernel offsets that cover it (the integer twin of
        :func:`~repro.engine.executor.integrate_events`) — no dense
        unfolding, so the cost tracks the event count.  Integer
        accumulation makes it bitwise-identical to the im2col path.
        The scatter is the engine's shared segment-sum kernel, chunked
        within each kernel tap to bound the transient product block,
        and a compiled plan's coverage tables replace the per-batch
        offset derivation when one is supplied.
        """
        n_out, c_out, oh, ow = executor.output_shape(spec, stream.shape)
        acc = np.zeros((n_out * oh * ow, c_out), dtype=np.int64)
        if not stream.num_events:
            return (acc.reshape(n_out, oh, ow, c_out)
                    .transpose(0, 3, 1, 2))
        n, c, y, x = stream.unravel()
        xc = self.pe.encode_log2(-stream.times / self.snn.config.tau)
        wc = self.pe.encode_log2(qt.log2_magnitudes)
        w_nonzero = qt.codes >= 0
        if plan is not None:
            coverage = ((ky, kx, ok, n[ok] * (oh * ow) + cells)
                        for ky, kx, ok, cells
                        in plan.coverage(y * stream.shape[3] + x))
        else:
            coverage = ((ky, kx, ok, (n[ok] * oh + oy) * ow + ox)
                        for ky, kx, ok, oy, ox in conv_offset_coverage(
                            y, x, spec.kernel_size, spec.stride,
                            spec.padding, oh, ow))
        for ky, kx, ok, rows in coverage:
            cs = c[ok]
            xt = xc[ok]
            for sl in scatter_chunks(len(rows), c_out):
                css = cs[sl]
                prods = self.pe.multiply(xt[sl][:, None],
                                         wc[:, css, ky, kx].T,
                                         qt.signs[:, css, ky, kx].T)
                scatter_add_rows(acc, rows[sl],
                                 np.where(w_nonzero[:, css, ky, kx].T,
                                          prods, 0))
        return acc.reshape(n_out, oh, ow, c_out).transpose(0, 3, 1, 2)

    def _products_conv(self, times: np.ndarray, qt,
                       spec: LayerSpec) -> np.ndarray:
        """Fixed-point PSP sums for a conv layer via im2col unfolding."""
        n = times.shape[0]
        k = spec.kernel_size
        # Unfold spike times; NO_SPIKE padding must survive the zero-pad,
        # so shift times by +1 (0 becomes "no spike") and undo after.
        shifted = np.where(times == NO_SPIKE, 0, times + 1).astype(np.float64)
        cols, (oh, ow) = im2col(shifted, k, spec.stride, spec.padding)
        col_times = np.where(cols == 0, NO_SPIKE, cols - 1)
        flat_qt_codes = qt.codes.reshape(qt.codes.shape[0], -1)
        # Reuse the linear path on the unfolded matrix.
        class _Q:  # minimal view with the fields _products_linear needs
            codes = flat_qt_codes
            signs = qt.signs.reshape(qt.signs.shape[0], -1)
            log2_magnitudes = qt.log2_magnitudes.reshape(
                qt.codes.shape[0], -1)

        acc = self._products_linear(col_times, _Q)
        c_out = qt.codes.shape[0]
        return acc.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)

    # ------------------------------------------------------------------
    # CodingScheme hooks
    # ------------------------------------------------------------------
    def _encode(self, values: np.ndarray):
        """Spike-encode values into the backend's representation."""
        cfg = self.snn.config
        times = self.kernel.spike_time(values, theta0=cfg.theta0,
                                       window=cfg.window)
        if self.backend in ("event", "auto"):
            return EventStream.from_dense(times, cfg.window)
        return SpikeTrain(times=times, window=cfg.window)

    def encode_input(self, images: np.ndarray, ctx: ExecutionContext):
        return self._encode(np.asarray(images, dtype=np.float64))

    def _resolve_backend(self, spec: LayerSpec, train) -> str:
        """Per-layer path under ``auto`` (integer math is bitwise-equal
        both ways, so the choice is purely a cost call)."""
        if self.backend != "auto":
            return self.backend
        return choose_backend(spec, train.num_events, train.shape)

    def weight_layer(self, spec: LayerSpec, train, ctx: ExecutionContext):
        scale = 1 << self.pe.precision_bits
        qt = self._quantized[id(spec)]
        layer_backend = self._resolve_backend(spec, train)
        if layer_backend == "event":
            if spec.kind == "conv":
                plan = self.plans.plan_for(spec, ctx.weight_index,
                                           train.shape)
                acc = self._products_conv_events(train, qt, spec, plan)
            else:
                acc = self._products_linear_events(train, qt)
        else:
            times = (train.to_dense() if isinstance(train, EventStream)
                     else train.times)
            if spec.kind == "conv":
                acc = self._products_conv(times, qt, spec)
            else:
                acc = self._products_linear(times, qt)
        # PPU: bias added once per window, in fixed point.
        bias = executor.bias_shaped(spec)
        acc = acc + np.round(bias * scale).astype(np.int64)
        membranes = acc.astype(np.float64) / scale
        if spec.is_output:
            return membranes * self.snn.output_scale
        return self._encode(np.maximum(membranes, 0.0))

    # ------------------------------------------------------------------
    def run(self, images: np.ndarray) -> FixedPointReport:
        output = executor.run_pipeline(self, images)
        reference = self.snn.forward_value(images)
        drift = float(np.max(np.abs(output - reference))) if output.size else 0.0
        return FixedPointReport(
            predictions=output.argmax(axis=1),
            reference_predictions=reference.argmax(axis=1),
            max_membrane_drift=drift,
        )

    def merge(self, results: List[FixedPointReport]) -> FixedPointReport:
        return FixedPointReport(
            predictions=np.concatenate([r.predictions for r in results]),
            reference_predictions=np.concatenate(
                [r.reference_predictions for r in results]),
            max_membrane_drift=max(r.max_membrane_drift for r in results),
        )


@register_scheme("fixed-point")
def _make_fixed_point(snn: ConvertedSNN, **options) -> FixedPointInference:
    return FixedPointInference(snn, **options)


# ----------------------------------------------------------------------
# Tile-level cycle accounting
# ----------------------------------------------------------------------

@dataclass
class TileRecord:
    """Execution of one 128-neuron output tile."""

    layer: str
    tile: int
    sort_cycles: int
    integrate_cycles: int
    encode_cycles: int
    input_spikes: int
    output_spikes: int

    @property
    def cycles(self) -> int:
        return self.sort_cycles + self.integrate_cycles + self.encode_cycles


@dataclass
class TiledRunReport:
    """Whole-image tile-level execution report."""

    tiles: List[TileRecord] = field(default_factory=list)
    output: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def total_cycles(self) -> int:
        return sum(t.cycles for t in self.tiles)

    def cycles_by_layer(self) -> dict:
        out: dict = {}
        for t in self.tiles:
            out[t.layer] = out.get(t.layer, 0) + t.cycles
        return out


class TiledCycleModel(SpikeTrainScheme):
    """Execute a converted network tile-by-tile with the real encoder FSM.

    Single-image granularity (the chip processes one inference at a
    time, Sec. 4.1).  Membrane math uses the float value domain — the
    fixed-point effects are FixedPointInference's job — but control flow
    (tiling, sorted-spike streaming, encoder walk) mirrors the hardware.
    The spike trains streamed between layers are the engine-produced
    ones; this class only adds the cycle accounting.
    """

    def __init__(self, snn: ConvertedSNN, cfg: Optional[HwConfig] = None):
        self.snn = snn
        self.cfg = cfg or HwConfig(window=snn.config.window,
                                   tau=snn.config.tau)
        self.encoder = SpikeEncoder(
            self.cfg.with_(window=snn.config.window, tau=snn.config.tau),
            theta0=snn.config.theta0)
        self.input_gen = InputGenerator(self.cfg)
        self.kernel = Base2Kernel(tau=snn.config.tau, base=snn.config.base)

    def run_image(self, image: np.ndarray) -> TiledRunReport:
        if image.ndim == 3:
            image = image[None]
        if image.shape[0] != 1:
            raise ValueError("tile-level simulation is single-image")
        return executor.run_pipeline(self, image)

    # ------------------------------------------------------------------
    # CodingScheme hooks (inter-layer state: the sorted EventStream)
    # ------------------------------------------------------------------
    def encode_input(self, image: np.ndarray,
                     ctx: ExecutionContext) -> EventStream:
        ctx.extra["report"] = TiledRunReport()
        return self.snn.input_events(np.asarray(image, dtype=np.float64))

    def weight_layer(self, spec: LayerSpec, stream: EventStream,
                     ctx: ExecutionContext) -> EventStream:
        cfg = self.snn.config
        report: TiledRunReport = ctx.extra["report"]
        name = f"{spec.kind}{ctx.weight_index}"
        decoded = stream.decode(self.kernel, cfg.theta0)
        membranes = executor.affine(spec, decoded)
        flat = membranes.reshape(-1)
        in_spikes = stream.num_spikes
        sort_cycles = self.input_gen.sort_cycles(in_spikes)

        if spec.is_output:
            report.output = membranes * self.snn.output_scale
            report.tiles.append(TileRecord(
                layer=name, tile=0, sort_cycles=sort_cycles,
                integrate_cycles=max(in_spikes, 1), encode_cycles=0,
                input_spikes=in_spikes, output_spikes=0))
            return stream

        n_pes = self.cfg.num_pes
        num_tiles = int(np.ceil(len(flat) / n_pes))
        out_shape = membranes.shape
        tile_spikes = self._per_tile_input_spikes(spec, stream, out_shape,
                                                  num_tiles, n_pes)
        tile_streams: List[EventStream] = []
        for tile in range(num_tiles):
            chunk = flat[tile * n_pes : (tile + 1) * n_pes]
            enc = self.encoder.encode(chunk)
            # the encoder emits its tile's spikes already time-sorted;
            # translate into the layer's flat index space for the merge
            tile_streams.append(
                enc.stream.with_offset(tile * n_pes, (len(flat),)))
            report.tiles.append(TileRecord(
                layer=name, tile=tile,
                # sorting is pipelined with the first tile's integration;
                # charge it once per layer
                sort_cycles=sort_cycles if tile == 0 else 0,
                # SpinalFlow streams one sorted spike per cycle per tile;
                # only the tile's receptive field streams (conv tiling)
                integrate_cycles=max(tile_spikes[tile], 1),
                encode_cycles=enc.cycles,
                input_spikes=tile_spikes[tile],
                output_spikes=enc.num_spikes))
        return EventStream.merge(tile_streams).reshape(out_shape)

    def finalize(self, state, ctx: ExecutionContext) -> TiledRunReport:
        return ctx.extra["report"]

    # ------------------------------------------------------------------
    def _per_tile_input_spikes(self, spec: LayerSpec, stream: EventStream,
                               out_shape, num_tiles: int,
                               n_pes: int) -> List[int]:
        """Input spikes each output tile must stream.

        Fully-connected tiles need every input spike.  Conv tiles cover a
        contiguous flat range of (C, H, W) outputs; only spikes inside
        the covered rows' receptive field (± the kernel halo) stream —
        counted straight off the stream's flat indices (two binary
        searches per tile over the sorted row coordinates, no dense
        rescan per layer).
        """
        total = stream.num_spikes
        if spec.kind != "conv":
            return [total] * num_tiles
        _, _, oh, ow = out_shape
        k, s, p = spec.kernel_size, spec.stride, spec.padding
        # spike row (H) coordinates in the input feature map, sorted
        _, _, h_in, w_in = stream.shape
        spike_rows = np.sort((stream.indices % (h_in * w_in)) // w_in)
        counts: List[int] = []
        per_map = oh * ow
        for tile in range(num_tiles):
            a = tile * n_pes
            b = min((tile + 1) * n_pes, int(np.prod(out_shape[1:]))) - 1
            y_lo = (a % per_map) // ow
            y_hi = (b % per_map) // ow
            if b // per_map > a // per_map:
                y_lo, y_hi = 0, oh - 1  # tile spans channel boundary
            in_lo = y_lo * s - p
            in_hi = y_hi * s - p + k - 1
            counts.append(int(
                np.searchsorted(spike_rows, in_hi, side="right")
                - np.searchsorted(spike_rows, in_lo, side="left")))
        return counts

"""Hardware configuration of the SNN processor (paper Sec. 4, Fig. 5).

Defaults describe the implemented design point:

* 28 nm, 0.99 V, 250 MHz;
* input generator: 48 KB input buffer + min-find merge-sort unit;
* PE array: 128 PEs in 4 groups of 32, each group with a 90 KB weight
  buffer;
* output processing: PPU + spike encoder (Vmem buffer, threshold LUT,
  128-to-7 priority encoder), 192 B output buffer;
* DMA to off-chip DRAM at 4 pJ/bit [15];
* 5-bit logarithmic weights, log PEs (LUT + shift + add).

``pe_style`` / ``decoder_style`` select the Fig. 6 design points:
``("linear", "sram")`` is the T2FSNN-on-SpinalFlow baseline,
``("linear", "lut")`` adds CAT's unified kernel (component I), and
``("log", "lut")`` is the full proposed design (component I+II).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Literal

PEStyle = Literal["linear", "log"]
DecoderStyle = Literal["sram", "lut"]


@dataclass(frozen=True)
class HwConfig:
    """Design-point description of the SNN processor."""

    # Technology / operating point (Table 4 row "Process/Voltage/Frequency")
    process_nm: int = 28
    voltage: float = 0.99
    frequency_hz: float = 250e6

    # Compute fabric
    num_pes: int = 128
    pe_groups: int = 4
    pe_style: PEStyle = "log"
    decoder_style: DecoderStyle = "lut"

    # Memories
    input_buffer_kb: float = 48.0
    weight_buffer_kb: float = 90.0  # per PE group, x4
    output_buffer_bytes: int = 192
    vmem_bits: int = 20  # membrane accumulator width per PE

    # Data formats
    weight_bits: int = 5  # logarithmic weights (Fig. 4 selection)
    kernel_value_bits: int = 10  # decoded kernel magnitude (linear PE operand)
    spike_id_bits: int = 7  # 128-to-7 priority encoder output
    timestep_bits: int = 7

    # TTFS coding point (T=24, tau=4)
    window: int = 24
    tau: float = 4.0

    # Baseline (per-layer kernels) decode storage: one table per layer per
    # group must be resident for reconfigurable decoding.
    num_layer_kernels: int = 16

    # Off-chip interface
    dram_pj_per_bit: float = 4.0

    def __post_init__(self):
        if self.num_pes % self.pe_groups:
            raise ValueError("num_pes must divide evenly into pe_groups")

    # ------------------------------------------------------------------
    @property
    def pes_per_group(self) -> int:
        return self.num_pes // self.pe_groups

    @property
    def peak_sops_per_s(self) -> float:
        """Peak synaptic operations per second (Table 4: 32 GSOP/s)."""
        return self.num_pes * self.frequency_hz

    @property
    def total_weight_buffer_kb(self) -> float:
        return self.weight_buffer_kb * self.pe_groups

    def with_(self, **overrides) -> "HwConfig":
        return replace(self, **overrides)

    # -- (de)serialisation for exported target descriptions ------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain field dict, JSON-serialisable as-is."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HwConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are an error, not a silent drop — a newer export
        read by an older checkout should fail loudly.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown HwConfig field(s): {', '.join(unknown)}")
        return cls(**data)


def proposed_config(**overrides) -> HwConfig:
    """The paper's implemented design (CAT + log PE): Fig. 6 'I+II'."""
    return HwConfig(**overrides)


def cat_only_config(**overrides) -> HwConfig:
    """CAT unified kernel but linear PEs: Fig. 6 point 'I'."""
    return HwConfig(pe_style="linear", decoder_style="lut", **overrides)


def baseline_config(**overrides) -> HwConfig:
    """T2FSNN-on-SpinalFlow baseline: per-layer kernel SRAM + linear PEs."""
    return HwConfig(pe_style="linear", decoder_style="sram", window=80,
                    tau=20.0, **overrides)

"""Hardware models: the SNN processor of Sec. 4 plus Table 4 baselines."""

from .config import (
    HwConfig,
    baseline_config,
    cat_only_config,
    proposed_config,
)
from .pe import (
    DecoderCost,
    LinearPE,
    LogPE,
    PECost,
    decoder_cost,
    linear_pe_cost,
    log_pe_cost,
    pe_cost,
)
from .area import Fig6Result, PEArrayReport, fig6_design_points, pe_array_report
from .spike_encoder import EncoderResult, SpikeEncoder
from .input_generator import InputGenerator, MinFindUnit, SortResult
from .ppu import PPU
from .dma import DMAEngine, DramTraffic
from .geometry import (
    FiringProfile,
    LayerGeometry,
    MEASURED_VGG_PROFILE,
    NetworkGeometry,
    geometry_from_converted,
    profile_from_simulation,
    uniform_profile,
    vgg16_geometry,
)
from .processor import LayerPerf, ProcessorReport, SNNProcessor
from .mapping import LayerMapping, MappingReport, map_network, max_resident_synapses
from .tilesim import (
    FixedPointInference,
    FixedPointReport,
    TiledCycleModel,
    TiledRunReport,
    TileRecord,
)
from .baselines import (
    TianjicLikeProcessor,
    TianjicReference,
    TianjicReport,
    TPUConfig,
    TPULikeProcessor,
    TPUReport,
)

__all__ = [
    "HwConfig",
    "baseline_config",
    "cat_only_config",
    "proposed_config",
    "DecoderCost",
    "LinearPE",
    "LogPE",
    "PECost",
    "decoder_cost",
    "linear_pe_cost",
    "log_pe_cost",
    "pe_cost",
    "Fig6Result",
    "PEArrayReport",
    "fig6_design_points",
    "pe_array_report",
    "EncoderResult",
    "SpikeEncoder",
    "InputGenerator",
    "MinFindUnit",
    "SortResult",
    "PPU",
    "DMAEngine",
    "DramTraffic",
    "FiringProfile",
    "LayerGeometry",
    "MEASURED_VGG_PROFILE",
    "NetworkGeometry",
    "geometry_from_converted",
    "profile_from_simulation",
    "uniform_profile",
    "vgg16_geometry",
    "LayerMapping",
    "MappingReport",
    "map_network",
    "max_resident_synapses",
    "FixedPointInference",
    "FixedPointReport",
    "TiledCycleModel",
    "TiledRunReport",
    "TileRecord",
    "LayerPerf",
    "ProcessorReport",
    "SNNProcessor",
    "TianjicLikeProcessor",
    "TianjicReference",
    "TianjicReport",
    "TPUConfig",
    "TPULikeProcessor",
    "TPUReport",
]

"""Input generator: 48 KB input buffer + min-find merge-sort unit.

SpinalFlow-style processing requires the input spikes of a layer in
*time-sorted* order so PEs can integrate them against the monotonically
decaying dendrite kernel.  Spikes arrive from DRAM grouped by producer
tile, not globally sorted; the min-find unit merge-sorts ``ways`` streams
by repeatedly selecting the earliest head element, emitting one sorted
spike per cycle after the compare-tree latency.

The 48 KB input buffer (a deliberate change from SpinalFlow, Sec. 4.1)
keeps a layer's input spikes on-chip so each of the layer's output tiles
can re-walk them without re-reading DRAM; ``dram_reads_per_spike``
quantifies that reuse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..events import EventStream
from ..snn.spikes import SpikeTrain
from . import energy as en
from .config import HwConfig


@dataclass
class SortResult:
    """Sorted event stream plus the cycle cost of producing it."""

    events: List[Tuple[int, int]]  # (time, neuron_id), time-major order
    cycles: int


class MinFindUnit:
    """Model of the merge-sort (min-find) front end."""

    def __init__(self, ways: int = 16):
        if ways < 2:
            raise ValueError("min-find needs at least 2 input streams")
        self.ways = ways

    @property
    def tree_depth(self) -> int:
        return int(math.ceil(math.log2(self.ways)))

    def sort(self, streams: Sequence[Sequence[Tuple[int, int]]]) -> SortResult:
        """K-way merge of per-tile event streams (each already sorted).

        Functional reference implementation: one output per cycle after
        the compare-tree fill latency.
        """
        heads = [list(s) for s in streams]
        merged: List[Tuple[int, int]] = []
        cursors = [0] * len(heads)
        total = sum(len(s) for s in heads)
        while len(merged) < total:
            best, best_i = None, -1
            for i, stream in enumerate(heads):
                if cursors[i] < len(stream):
                    cand = stream[cursors[i]]
                    if best is None or cand < best:
                        best, best_i = cand, i
            merged.append(best)
            cursors[best_i] += 1
        return SortResult(events=merged, cycles=total + self.tree_depth)

    def sort_stream(self, stream: EventStream) -> SortResult:
        """Cost of emitting an already-sorted event stream.

        The stream *is* the unit's output order (time-major, id-minor),
        so only the per-spike emission and compare-tree fill cycles are
        charged — no dense rescan.
        """
        return SortResult(events=list(stream),
                          cycles=stream.num_events + self.tree_depth)

    def sort_train(self, train) -> SortResult:
        """Sort a whole SpikeTrain or EventStream into emission order."""
        if isinstance(train, EventStream):
            return self.sort_stream(train)
        return self.sort_stream(train.to_events())


@dataclass
class InputGenerator:
    """Input buffer + min-find: capacity, reuse and cost accounting."""

    cfg: HwConfig
    minfind: MinFindUnit = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.minfind is None:
            self.minfind = MinFindUnit(ways=16)

    @property
    def spike_record_bits(self) -> int:
        """One stored spike: neuron id + timestep (padded to a byte lane)."""
        id_bits = 16  # up to 64K neurons per layer slice
        return id_bits + self.cfg.timestep_bits + 1  # +1 valid bit

    @property
    def capacity_spikes(self) -> int:
        """Spikes that fit in the input buffer."""
        bits = self.cfg.input_buffer_kb * 1024 * 8
        return int(bits // self.spike_record_bits)

    #: Halo re-read factor for spatially tiled conv layers whose spike
    #: footprint exceeds the buffer: adjacent tiles re-read the one-pixel
    #: input halo (3x3 kernels), ~30% overhead at 128-neuron tiles.
    CONV_HALO_FACTOR = 1.3

    def dram_reads_per_spike(self, layer_input_spikes: int,
                             output_tiles: int,
                             spatial: bool = True) -> float:
        """Average DRAM reads of each input spike for a layer.

        If the layer's spikes fit in the 48 KB buffer they are read once
        and reused across all output tiles (the buffer exists for exactly
        this, Sec. 4.1).  When they do not fit, conv layers fall back to
        spatial tiling and only re-read tile halos; fully-connected
        layers re-stream the non-resident fraction once per output tile
        (every output neuron needs every input spike).
        """
        if layer_input_spikes <= self.capacity_spikes:
            return 1.0
        if spatial:
            return self.CONV_HALO_FACTOR
        resident = self.capacity_spikes / layer_input_spikes
        return resident * 1.0 + (1.0 - resident) * output_tiles

    def sort_cycles(self, num_spikes: int) -> int:
        return num_spikes + self.minfind.tree_depth

    # ------------------------------------------------------------------
    def area_um2(self) -> float:
        buf = en.sram_macro(self.cfg.input_buffer_kb).area_um2
        cmp_tree = (self.minfind.ways - 1) * en.comparator(
            self.cfg.timestep_bits).area_um2
        regs = self.minfind.ways * en.register(self.spike_record_bits).area_um2
        return buf + cmp_tree + regs

    def energy_pj_per_spike(self) -> float:
        """Buffer read + compare tree traversal per emitted sorted spike."""
        read = en.SRAM_ACCESS_PJ + en.SRAM_RD_PJ_PER_BIT * self.spike_record_bits
        compares = self.minfind.tree_depth * en.comparator(
            self.cfg.timestep_bits).energy_pj
        return read + compares

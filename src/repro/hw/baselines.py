"""Comparison processors of Table 4: a redesigned TPU and Tianjic.

* **TPU-like** — the paper redesigns the TPU [16] down to a 16x16
  systolic MAC array in the same 28 nm node (256 MACs, 250 MHz,
  64 GMAC/s peak).  It runs the *dense* ANN: every MAC executes
  regardless of sparsity, weights stream from DRAM in 8-bit fixed point.
* **Tianjic-like** — Tianjic [10] keeps everything on-chip (no DRAM
  traffic) across 2496 small PEs at 300 MHz.  The paper compares against
  Tianjic's published CIFAR-10 numbers; since its internals are not
  reproducible from the paper, the model wraps the published operating
  point and exposes the same report interface, with a first-order
  scaling rule for other workloads it did not run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .geometry import NetworkGeometry


@dataclass(frozen=True)
class TPUConfig:
    """The redesigned 16x16 systolic array of Table 4."""

    rows: int = 16
    cols: int = 16
    frequency_hz: float = 250e6
    weight_bits: int = 8
    activation_bits: int = 8
    power_mw: float = 100.1  # reported operating power
    area_mm2: float = 1.4358
    dram_pj_per_bit: float = 4.0
    utilization: float = 1.0

    @property
    def num_macs(self) -> int:
        return self.rows * self.cols

    @property
    def peak_gmacs(self) -> float:
        return self.num_macs * self.frequency_hz / 1e9


@dataclass
class TPUReport:
    """Per-image metrics of the TPU-like baseline."""

    config: TPUConfig
    macs: int
    dram_bits: int

    @property
    def cycles(self) -> int:
        return int(np.ceil(self.macs / (self.config.num_macs
                                        * self.config.utilization)))

    @property
    def runtime_s(self) -> float:
        return self.cycles / self.config.frequency_hz

    @property
    def fps(self) -> float:
        return 1.0 / self.runtime_s

    @property
    def core_energy_uj(self) -> float:
        return self.config.power_mw * self.runtime_s * 1e3

    @property
    def dram_energy_uj(self) -> float:
        return self.dram_bits * self.config.dram_pj_per_bit * 1e-6

    @property
    def energy_per_image_uj(self) -> float:
        return self.core_energy_uj + self.dram_energy_uj


class TPULikeProcessor:
    """Dense-ANN execution model of the redesigned TPU."""

    def __init__(self, cfg: Optional[TPUConfig] = None):
        self.cfg = cfg or TPUConfig()

    def run(self, geometry: NetworkGeometry) -> TPUReport:
        macs = geometry.total_macs
        # Weights stream once per image; activations move per layer.
        weight_bits = geometry.total_synapses * self.cfg.weight_bits
        act_bits = sum(
            (l.in_neurons + l.out_neurons) * self.cfg.activation_bits
            for l in geometry.layers
        ) // 2  # outputs of layer l are inputs of l+1: count once
        return TPUReport(config=self.cfg, macs=macs,
                         dram_bits=weight_bits + act_bits)


@dataclass(frozen=True)
class TianjicReference:
    """Published Tianjic operating point used for the Table 4 row [10]."""

    process_nm: int = 28
    voltage: float = 0.85
    area_mm2: float = 14.44
    frequency_hz: float = 300e6
    num_pes: int = 2496
    power_mw: float = 950.0
    peak_gsops: float = 683.2
    cifar10_accuracy: float = 0.895
    cifar10_energy_uj: float = 129.0
    cifar10_fps: float = 46827.0


@dataclass
class TianjicReport:
    """Tianjic metrics: published for CIFAR-10, scaled for what-ifs."""

    reference: TianjicReference
    sops: int = 0
    fits_on_chip: bool = True

    @property
    def fps(self) -> float:
        if self.sops == 0:
            return self.reference.cifar10_fps
        return min(self.reference.peak_gsops * 1e9 / max(self.sops, 1),
                   self.reference.cifar10_fps)

    @property
    def energy_per_image_uj(self) -> float:
        if self.sops == 0:
            return self.reference.cifar10_energy_uj
        return self.reference.power_mw / self.fps * 1e3


class TianjicLikeProcessor:
    """Wrapper around the published Tianjic numbers.

    Tianjic stores all weights on-chip; VGG-16-sized models do not fit,
    which is why Table 4 has no Tianjic entries for CIFAR-100 and
    Tiny-ImageNet.  ``run`` reports ``fits_on_chip=False`` for such
    workloads instead of inventing numbers.
    """

    ON_CHIP_WEIGHT_BUDGET = 12_000_000  # ~12 MB of on-chip synapse memory

    def __init__(self, ref: Optional[TianjicReference] = None):
        self.ref = ref or TianjicReference()

    def run(self, geometry: Optional[NetworkGeometry] = None) -> TianjicReport:
        if geometry is None:
            return TianjicReport(reference=self.ref)
        fits = geometry.total_synapses <= self.ON_CHIP_WEIGHT_BUDGET
        return TianjicReport(reference=self.ref, sops=geometry.total_macs,
                             fits_on_chip=fits)

"""DMA engine and off-chip DRAM traffic/energy accounting.

The processor keeps weights and inter-layer spike tensors in off-chip
DRAM (Table 4: "On-chip, Off-chip").  Each processed image streams:

* every layer's weights once (they fit the 4 x 90 KB weight buffers per
  layer, so no re-fetch within a layer);
* every layer's input spike records (modulated by the input-buffer reuse
  factor from :class:`~repro.hw.input_generator.InputGenerator`);
* every layer's output spike records (written back).

DRAM energy uses the paper's HBM-like interface at 4 pJ/bit [15].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class DramTraffic:
    """Bit-level traffic ledger for one processed image."""

    weight_bits: int = 0
    spike_read_bits: int = 0
    spike_write_bits: int = 0
    per_layer: List[Dict] = field(default_factory=list)

    @property
    def total_bits(self) -> int:
        return self.weight_bits + self.spike_read_bits + self.spike_write_bits

    def energy_uj(self, pj_per_bit: float) -> float:
        return self.total_bits * pj_per_bit * 1e-6

    def add_layer(self, name: str, weight_bits: int, read_bits: int,
                  write_bits: int) -> None:
        self.weight_bits += weight_bits
        self.spike_read_bits += read_bits
        self.spike_write_bits += write_bits
        self.per_layer.append({
            "layer": name,
            "weight_bits": weight_bits,
            "spike_read_bits": read_bits,
            "spike_write_bits": write_bits,
        })


@dataclass
class DMAEngine:
    """Bandwidth/cycle model of the DMA engine."""

    bus_bits_per_cycle: int = 64
    pj_per_bit: float = 4.0

    def transfer_cycles(self, bits: int) -> int:
        return (bits + self.bus_bits_per_cycle - 1) // self.bus_bits_per_cycle

    def energy_uj(self, bits: int) -> float:
        return bits * self.pj_per_bit * 1e-6

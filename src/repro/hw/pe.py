"""Processing-element models: linear (multiplier) vs log (LUT + shift).

Each PE integrates one output neuron's membrane: per input spike it
multiplies the decoded kernel value by the synaptic weight and
accumulates (Eq. 4).  The baseline *linear* PE does this with a real
multiplier on the decoded value; the proposed *log* PE exploits that both
operands are powers of two (Sec. 3.2) and reduces the multiply to an
integer add in the log domain followed by LUT + shift (Eq. 17).

Both a functional fixed-point datapath (used in unit tests against float
references) and area/energy cost breakdowns (used by the Fig. 6 and
Table 4 models) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..quant.lut import LogDomainPE
from .config import HwConfig
from . import energy as en


# ----------------------------------------------------------------------
# Functional models
# ----------------------------------------------------------------------

@dataclass
class LinearPE:
    """Baseline PE: fixed-point multiply of decoded kernel value x weight."""

    kernel_value_bits: int = 10
    weight_bits: int = 8
    vmem_bits: int = 20

    def process(self, kernel_values: np.ndarray, weights: np.ndarray
                ) -> np.ndarray:
        """PSP contributions for decoded values and (linear) weights.

        Operands are quantised to their datapath widths before the
        multiply, mirroring the RTL.
        """
        kv = np.round(np.asarray(kernel_values) * (1 << (self.kernel_value_bits - 1)))
        kv = np.clip(kv, 0, (1 << (self.kernel_value_bits - 1)))
        w_scale = 1 << (self.weight_bits - 2)
        wq = np.clip(np.round(np.asarray(weights) * w_scale),
                     -(1 << (self.weight_bits - 1)),
                     (1 << (self.weight_bits - 1)) - 1)
        prod = kv * wq
        return prod / ((1 << (self.kernel_value_bits - 1)) * w_scale)


@dataclass
class LogPE:
    """Proposed PE: log-domain add + LUT + shift (Eq. 17)."""

    frac_bits: int = 2
    precision_bits: int = 16
    datapath: LogDomainPE = field(init=False)

    def __post_init__(self):
        self.datapath = LogDomainPE(frac_bits=self.frac_bits,
                                    precision_bits=self.precision_bits)

    def process(self, x_log2: np.ndarray, w_log2: np.ndarray,
                w_sign: np.ndarray) -> np.ndarray:
        """PSP contributions from log2-domain operands."""
        xc = self.datapath.encode_log2(x_log2)
        wc = self.datapath.encode_log2(w_log2)
        return self.datapath.to_float(self.datapath.multiply(xc, wc, w_sign))


# ----------------------------------------------------------------------
# Cost models
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PECost:
    """Area (um^2) and per-op energy (pJ) of one PE, itemised."""

    style: str
    area_breakdown: Dict[str, float]
    energy_breakdown: Dict[str, float]

    @property
    def area_um2(self) -> float:
        return sum(self.area_breakdown.values())

    @property
    def energy_pj_per_op(self) -> float:
        return sum(self.energy_breakdown.values())


def linear_pe_cost(cfg: HwConfig, weight_bits: int | None = None) -> PECost:
    """Cost of the baseline multiplier PE.

    The baseline processes 8-bit linear weights (T2FSNN has no log
    quantisation) against the decoded kernel magnitude.
    """
    wb = weight_bits if weight_bits is not None else 8
    mult = en.multiplier(wb, cfg.kernel_value_bits)
    add = en.adder(cfg.vmem_bits)
    vreg = en.register(cfg.vmem_bits)
    area = {
        "multiplier": mult.area_um2,
        "accumulator": add.area_um2,
        "vmem_reg": vreg.area_um2,
        "control": en.PE_CONTROL_UM2,
    }
    eng = {
        "multiplier": mult.energy_pj,
        "accumulator": add.energy_pj,
        "vmem_reg": vreg.energy_pj,
        "control": en.PE_CONTROL_PJ_PER_OP,
    }
    return PECost(style="linear", area_breakdown=area, energy_breakdown=eng)


def log_pe_cost(cfg: HwConfig) -> PECost:
    """Cost of the proposed log PE: log-add + frac LUT + barrel shift."""
    frac_bits = 2  # tau=4, z_w=1 -> max 2 fractional bits (Eq. 16/18)
    log_add = en.adder(cfg.timestep_bits + frac_bits)
    lut = en.small_lut(1 << frac_bits, cfg.kernel_value_bits)
    shift = en.shifter(cfg.vmem_bits)
    add = en.adder(cfg.vmem_bits)
    vreg = en.register(cfg.vmem_bits)
    area = {
        "log_adder": log_add.area_um2,
        "frac_lut": lut.area_um2,
        "shifter": shift.area_um2,
        "accumulator": add.area_um2,
        "vmem_reg": vreg.area_um2,
        "control": en.PE_CONTROL_UM2,
    }
    eng = {
        "log_adder": log_add.energy_pj,
        "frac_lut": lut.energy_pj,
        "shifter": shift.energy_pj,
        "accumulator": add.energy_pj,
        "vmem_reg": vreg.energy_pj,
        "control": en.PE_CONTROL_PJ_PER_OP,
    }
    return PECost(style="log", area_breakdown=area, energy_breakdown=eng)


def pe_cost(cfg: HwConfig) -> PECost:
    return log_pe_cost(cfg) if cfg.pe_style == "log" else linear_pe_cost(cfg)


# ----------------------------------------------------------------------
# Spike decoder (the Fig. 6 'Decoder' bar)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DecoderCost:
    """Kernel-decode storage per PE group.

    * ``sram``: T2FSNN needs a reconfigurable table per layer (different
      t_d/tau per layer), so each group holds num_layers * (T+1) decoded
      magnitudes in an SRAM macro, read every processed spike.
    * ``lut``: CAT unifies the kernel, so one combinational (T+1)-entry
      LUT per group suffices.
    """

    style: str
    area_um2_per_group: float
    energy_pj_per_access: float


def decoder_cost(cfg: HwConfig) -> DecoderCost:
    entries = cfg.window + 1
    if cfg.decoder_style == "sram":
        bits = cfg.num_layer_kernels * entries * cfg.kernel_value_bits
        macro = en.sram_macro(bits / 8 / 1024)
        per_access = en.SRAM_ACCESS_PJ + en.SRAM_RD_PJ_PER_BIT * cfg.kernel_value_bits
        return DecoderCost("sram", macro.area_um2, per_access)
    lut = en.small_lut(entries, cfg.kernel_value_bits)
    return DecoderCost("lut", lut.area_um2, lut.energy_pj)

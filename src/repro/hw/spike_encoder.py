"""Cycle-level model of the output spike encoder (paper Sec. 4.1, Fig. 5).

The encoder turns a batch of membrane potentials into output spikes:

1. Vmems move from the PPU into the Vmem buffer; negative Vmems are
   zeroed (they can never reach a positive threshold).
2. The encoding timestep sweeps the window; the threshold LUT supplies
   ``theta(t) = theta0 * kappa(t)`` to 128 comparators.
3. When several Vmems exceed the threshold, the 128-to-7 priority
   encoder drains them one per cycle; each drained neuron's Vmem is
   reset to zero through the decoder feedback path.
4. The timestep advances when no comparator is asserted; encoding stops
   early once every Vmem is zero, else at the end of the window.

``encode`` reproduces this FSM exactly and reports the cycle count, so
the performance model charges the true serialisation cost (T timestep
advances + one cycle per emitted spike).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..cat.kernels import NO_SPIKE, Base2Kernel
from ..events import EventStream
from . import energy as en
from .config import HwConfig

_FIRE_TOL = 1e-9


@dataclass
class EncoderResult:
    """Spikes and cost of one encoder batch.

    ``stream`` carries the emitted spikes in the FSM's emission order —
    which *is* the canonical sorted event-stream order (the timestep
    advances monotonically and the priority encoder drains ascending
    neuron ids), so downstream consumers (tile model, input generator)
    take it as-is instead of rebuilding and re-sorting a dense train.
    """

    spike_times: np.ndarray  # per-neuron fire step or NO_SPIKE
    stream: EventStream      # the same spikes, time-sorted events
    cycles: int

    @property
    def events(self) -> List[Tuple[int, int]]:
        """(timestep, neuron_id) pairs in emission order (compat view)."""
        return list(self.stream)

    @property
    def num_spikes(self) -> int:
        return self.stream.num_events


class SpikeEncoder:
    """The hardware encoder FSM for one batch of <=128 membrane values."""

    def __init__(self, cfg: HwConfig, theta0: float = 1.0):
        self.cfg = cfg
        self.theta0 = theta0
        self.kernel = Base2Kernel(tau=cfg.tau)
        # Threshold LUT contents: theta(t) for t = 0..T.
        self.threshold_lut = self.kernel.threshold(
            np.arange(cfg.window + 1), theta0
        )

    def encode(self, vmems: np.ndarray) -> EncoderResult:
        """Run the encoding FSM over one Vmem-buffer batch."""
        vmems = np.asarray(vmems, dtype=np.float64).ravel()
        if len(vmems) > self.cfg.num_pes:
            raise ValueError(
                f"encoder batch of {len(vmems)} exceeds {self.cfg.num_pes} PEs"
            )
        # Init: load Vmems, clamp negatives to zero (Sec. 4.1).
        buffer = np.maximum(vmems, 0.0)
        times = np.full(len(buffer), NO_SPIKE, dtype=np.int64)
        cycles = 1  # buffer load
        for t in range(self.cfg.window + 1):
            threshold = self.threshold_lut[t]
            cycles += 1  # threshold fetch + compare
            # Priority encoder drains one asserted comparator per cycle.
            over = np.nonzero(buffer >= threshold - _FIRE_TOL)[0]
            for neuron in over:
                if buffer[neuron] == 0.0 and threshold > 0.0:
                    continue
                times[neuron] = t
                buffer[neuron] = 0.0  # decoder feedback reset
                cycles += 1
            if not buffer.any():
                break  # all Vmems reset: early exit
        return EncoderResult(
            spike_times=times,
            stream=EventStream.from_dense(times, self.cfg.window),
            cycles=cycles)

    # ------------------------------------------------------------------
    def cycles_estimate(self, num_neurons: int, num_spikes: int) -> int:
        """Closed-form cycle count for the performance model.

        One load + up to (T+1) timestep advances + one cycle per spike.
        """
        batches = int(np.ceil(num_neurons / self.cfg.num_pes))
        return batches * (self.cfg.window + 2) + num_spikes

    # ------------------------------------------------------------------
    def area_um2(self) -> float:
        """Encoder block area: Vmem buffer, comparators, LUT, prio-enc."""
        cfg = self.cfg
        vmem_buf = en.register(cfg.vmem_bits).area_um2 * cfg.num_pes
        cmps = en.comparator(cfg.vmem_bits).area_um2 * cfg.num_pes
        lut = en.small_lut(cfg.window + 1, cfg.kernel_value_bits).area_um2
        # 128-to-7 priority encoder + 7-to-128 reset decoder (gate estimate).
        prio = 18.0 * cfg.num_pes
        dec = 8.0 * cfg.num_pes
        return vmem_buf + cmps + lut + prio + dec

    def energy_pj_per_cycle(self) -> float:
        """Dynamic energy per active encoder cycle (all comparators fire)."""
        cfg = self.cfg
        cmps = en.comparator(cfg.vmem_bits).energy_pj * cfg.num_pes
        lut = en.small_lut(cfg.window + 1, cfg.kernel_value_bits).energy_pj
        prio = 0.08
        return cmps + lut + prio

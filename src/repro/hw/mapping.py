"""Layer-to-weight-buffer mapping (the 4 x 90 KB buffers of Fig. 5).

The performance model charges each layer's weights exactly one DRAM read
per image.  That holds when the weights needed *concurrently* — one
128-neuron output tile's working set — fit the on-chip buffers; tiles
partition the weight tensor, so streaming tile-by-tile still reads every
weight once.

The working set of a tile is

* conv:   ``C_in * K * K * min(C_out, 128) * weight_bits``
  (spatial positions share channel weights, so a tile processing up to
  128 output channels holds those channels' filters);
* linear: ``in_features * min(out_features, 128) * weight_bits``.

A satisfying reproduction detail falls out of this model: VGG-16's
largest layers (512 -> 512 conv, 3x3) need exactly
``512 * 9 * 128 * 5 bit = 360 KB = 4 x 90 KB`` — the paper's buffer is
sized precisely for its workload at the selected 5-bit weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from .config import HwConfig
from .geometry import LayerGeometry, NetworkGeometry


@dataclass(frozen=True)
class LayerMapping:
    """Buffer residency of one layer's weights."""

    name: str
    weight_bits: int  # total layer weights (DRAM traffic per image)
    tile_bits: int  # concurrent working set of one output tile
    fits: bool
    passes: int  # fetch passes per tile (1 = working set resident)
    buffer_utilization: float  # tile working set / buffer capacity

    @property
    def refill_factor(self) -> float:
        """Multiplier on the layer's weight traffic (1.0 = no refills)."""
        return float(self.passes)


@dataclass
class MappingReport:
    """Whole-network buffer mapping."""

    config: HwConfig
    layers: List[LayerMapping] = field(default_factory=list)

    @property
    def all_fit(self) -> bool:
        return all(m.fits for m in self.layers)

    @property
    def worst_utilization(self) -> float:
        return max((m.buffer_utilization for m in self.layers), default=0.0)

    @property
    def total_refill_bits(self) -> int:
        return sum(int(m.weight_bits * (m.passes - 1)) for m in self.layers)

    def summary_rows(self) -> list:
        return [[m.name, m.tile_bits // 8192, f"{m.buffer_utilization:.2f}",
                 m.passes, "yes" if m.fits else "NO"]
                for m in self.layers]


def tile_working_set_bits(layer: LayerGeometry, cfg: HwConfig) -> int:
    """Weights one 128-PE output tile needs resident, in bits.

    For conv layers ``fanout = K*K*C_out`` (3x3 kernels throughout the
    paper's VGG workloads), from which C_out and the per-channel filter
    size C_in*K*K are recovered.
    """
    if layer.kind == "conv":
        c_out = max(layer.fanout // 9, 1)  # fanout = 3*3*C_out
        cin_k2 = layer.synapses // c_out
        concurrent = min(c_out, cfg.num_pes)
        return cin_k2 * concurrent * cfg.weight_bits
    concurrent = min(layer.out_neurons, cfg.num_pes)
    in_features = layer.synapses // layer.out_neurons
    return in_features * concurrent * cfg.weight_bits


def map_network(geometry: NetworkGeometry,
                cfg: HwConfig | None = None) -> MappingReport:
    """Map every weight layer onto the processor's weight buffers."""
    cfg = cfg or HwConfig()
    capacity_bits = cfg.total_weight_buffer_kb * 1024 * 8
    report = MappingReport(config=cfg)
    for layer in geometry.layers:
        weight_bits = layer.synapses * cfg.weight_bits
        tile_bits = tile_working_set_bits(layer, cfg)
        passes = max(1, math.ceil(tile_bits / capacity_bits))
        report.layers.append(LayerMapping(
            name=layer.name,
            weight_bits=weight_bits,
            tile_bits=tile_bits,
            fits=passes == 1,
            passes=passes,
            buffer_utilization=tile_bits / capacity_bits,
        ))
    return report


def max_resident_synapses(cfg: HwConfig | None = None) -> int:
    """Largest tile working set (in synapses) the buffers can hold."""
    cfg = cfg or HwConfig()
    capacity_bits = cfg.total_weight_buffer_kb * 1024 * 8
    return int(capacity_bits // cfg.weight_bits)

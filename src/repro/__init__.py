"""repro — reproduction of "A Time-to-first-spike Coding and Conversion
Aware Training for Energy-Efficient Deep Spiking Neural Network Processor
Design" (Lew, Lee, Park; DAC 2022).

Subpackages
-----------
tensor   : numpy autograd engine (the training substrate)
nn       : layers + VGG builders with hot-swappable activations
optim    : SGD + multi-step LR (the paper's training recipe)
data     : synthetic CIFAR/Tiny-ImageNet stand-ins
cat      : conversion-aware training + ANN-to-SNN conversion (core)
engine   : unified layer-walk core + batched runner + scheme registry
api      : declarative experiment pipelines (config -> stages -> report)
snn      : event-driven TTFS simulator + T2FSNN baseline
quant    : logarithmic weight quantisation + LUT/shift arithmetic
serve    : versioned model artifacts + registry + prediction server
targets  : compile artifacts into self-contained execution targets
hw       : SNN processor model (SpinalFlow-derived) + Table 4 baselines
analysis : metrics, reporting, paper reference constants
"""

__version__ = "1.0.0"

from . import (analysis, api, cat, data, engine, hw, nn, optim, quant,
               serve, snn, targets, tensor)
from .errors import ReproError

__all__ = [
    "ReproError",
    "analysis",
    "api",
    "cat",
    "data",
    "engine",
    "hw",
    "nn",
    "optim",
    "quant",
    "serve",
    "snn",
    "targets",
    "tensor",
    "__version__",
]

"""CAT activation functions (paper Eqs. 10-13).

Three activations are used over the course of conversion-aware training:

* ``relu``       — warm-up (epochs 0..9 in the paper's recipe);
* ``phi_clip``   — Eq. 12/13, a [0, theta0] clamp: stable training with a
  small residual representation error after conversion;
* ``phi_ttfs``   — Eq. 10/11, the exact simulation of kernel-based TTFS
  coding: the forward pass quantises activations onto the spike-time grid
  ``theta0 * 2**(-dt/tau), dt in {0..T}`` and the backward pass uses a
  straight-through gradient inside the representable range.

``phi_ttfs`` rounds *down* in the log domain (a value fires at the first
integer timestep whose threshold it reaches, and is decoded as that
threshold), which is the causal IF-neuron behaviour; the ceil in the
paper's Eq. 10 composes with the kernel's negative exponent to the same
grid point.  The invariant that matters — the ANN activation equals the
converted SNN's decode bit-for-bit — is asserted by the test-suite
against the event-driven simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tensor import Tensor, custom_op
from .kernels import GRID_SNAP_TOL, Base2Kernel


def ttfs_quantize_array(
    x: np.ndarray, window: int, tau: float, theta0: float = 1.0,
    base: float = 2.0,
) -> np.ndarray:
    """Forward of phi_TTFS on a raw array (Eq. 10).

    Values >= theta0 saturate at theta0 (they fire immediately); values
    below the last threshold of the window, theta0 * base**(-window/tau),
    never fire and map to 0; everything in between maps onto the
    spike-time grid by rounding down in the log domain.
    """
    x = np.asarray(x)
    out = np.zeros_like(x, dtype=np.float64)
    positive = x > 0
    log_base = np.log(base)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        raw = tau * np.log(theta0 / np.where(positive, x, 1.0)) / log_base
    steps = np.ceil(raw - GRID_SNAP_TOL)
    steps = np.clip(steps, 0, None)
    fires = positive & (steps <= window)
    out[fires] = theta0 * np.power(base, -steps[fires] / tau)
    return out.astype(x.dtype, copy=False)


def clip_array(x: np.ndarray, theta0: float = 1.0) -> np.ndarray:
    """Forward of phi_Clip on a raw array (Eq. 12/13)."""
    return np.clip(x, 0.0, theta0)


@dataclass(frozen=True)
class TTFSActivation:
    """phi_TTFS as a differentiable op (Eq. 10 forward, Eq. 11 backward).

    The gradient is 1 on the representable range
    ``[theta0 * 2**(-T/tau), theta0)`` and 0 outside it — the standard
    straight-through estimator used in quantisation-aware training, which
    is exactly what CAT borrows from QAT [12].
    """

    window: int = 24
    tau: float = 4.0
    theta0: float = 1.0
    base: float = 2.0

    @property
    def kernel(self) -> Base2Kernel:
        return Base2Kernel(tau=self.tau, base=self.base)

    @property
    def min_representable(self) -> float:
        """kappa(T) * theta0 — the smallest non-zero decodable value."""
        return self.theta0 * self.base ** (-self.window / self.tau)

    @property
    def num_levels(self) -> int:
        """Non-zero grid levels within the window (+1 for zero)."""
        return self.window + 1

    def __call__(self, x: Tensor) -> Tensor:
        fwd = ttfs_quantize_array(x.data, self.window, self.tau, self.theta0,
                                  self.base)
        inside = (x.data >= self.min_representable) & (x.data < self.theta0)

        def backward(g):
            return (g * inside,)

        return custom_op([x], fwd, backward)

    def array(self, x: np.ndarray) -> np.ndarray:
        """Apply the forward transform to a raw array (no autograd)."""
        return ttfs_quantize_array(x, self.window, self.tau, self.theta0,
                                   self.base)


@dataclass(frozen=True)
class ClipActivation:
    """phi_Clip (Eq. 12/13): clamp to [0, theta0], STE gradient inside."""

    theta0: float = 1.0

    def __call__(self, x: Tensor) -> Tensor:
        return x.clip(0.0, self.theta0)

    def array(self, x: np.ndarray) -> np.ndarray:
        return clip_array(x, self.theta0)


@dataclass(frozen=True)
class ReLUActivation:
    """Plain ReLU, used to boost the first training epochs."""

    def __call__(self, x: Tensor) -> Tensor:
        return x.relu()

    def array(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)


def make_activation(kind: str, window: int, tau: float, theta0: float = 1.0,
                    base: float = 2.0):
    """Factory mapping schedule stage names to activation callables."""
    if kind == "relu":
        return ReLUActivation()
    if kind == "clip":
        return ClipActivation(theta0=theta0)
    if kind == "ttfs":
        return TTFSActivation(window=window, tau=tau, theta0=theta0, base=base)
    raise ValueError(f"unknown activation kind {kind!r}")

"""Conversion-aware training (CAT) — the paper's primary contribution."""

from .kernels import NO_SPIKE, Base2Kernel, ExpKernel, equivalent_base2_tau
from .activations import (
    ClipActivation,
    ReLUActivation,
    TTFSActivation,
    clip_array,
    make_activation,
    ttfs_quantize_array,
)
from .schedule import METHODS, CATConfig, paper_config
from .trainer import CATTrainer, EpochRecord, TrainResult, evaluate, train_cat
from .convert import (
    ConvertedSNN,
    LayerSpec,
    apply_output_weight_norm,
    conversion_loss,
    convert,
    extract_layer_specs,
    fuse_conv_bn,
)
from .errors import ActivationCurves, activation_curves, layerwise_conversion_error

__all__ = [
    "NO_SPIKE",
    "Base2Kernel",
    "ExpKernel",
    "equivalent_base2_tau",
    "ClipActivation",
    "ReLUActivation",
    "TTFSActivation",
    "clip_array",
    "make_activation",
    "ttfs_quantize_array",
    "METHODS",
    "CATConfig",
    "paper_config",
    "CATTrainer",
    "EpochRecord",
    "TrainResult",
    "evaluate",
    "train_cat",
    "ConvertedSNN",
    "LayerSpec",
    "apply_output_weight_norm",
    "conversion_loss",
    "convert",
    "extract_layer_specs",
    "fuse_conv_bn",
    "ActivationCurves",
    "activation_curves",
    "layerwise_conversion_error",
]

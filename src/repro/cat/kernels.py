"""TTFS coding kernels (paper Eqs. 5 and 9).

Two kernel families are implemented:

* :class:`ExpKernel` — the T2FSNN baseline kernel (Eq. 5),
  ``eps(t) = exp(-(t - t_d) / tau)`` with *per-layer* delay ``t_d`` and
  time constant ``tau``.  The post-conversion optimisation of [4] tunes
  these per layer, which is what forces reconfigurable encode/decode
  hardware.
* :class:`Base2Kernel` — the paper's kernel (Eq. 9),
  ``kappa(t) = 2**(-t / tau)`` with no delay and a *single global* tau.
  With ``log2(tau)`` an integer power of two (Eq. 18) spike times live on
  a grid that satisfies the shift-compatibility condition (Eq. 16), which
  is what enables the LUT+shift PE.

Both kernels share one interface: ``value(dt)`` evaluates the kernel at a
relative time, ``spike_time(x, theta0, window)`` returns the integer fire
step of a membrane value under the decaying threshold
``theta(t) = theta0 * kernel(t)``, and ``decode(dt, theta0)`` inverts a
spike time back to the represented value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

# The no-fire sentinel lives with the event-stream representation (the
# package's bottom layer); re-exported here for every kernel consumer.
from ..events import NO_SPIKE

#: Log-domain snap tolerance: values within 2**(TOL/tau) of a grid point
#: count as on-grid.  Sized for float32 inputs (eps ~1.2e-7 perturbs the
#: log2 position by ~tau * 2e-7); distortion for true off-grid values is
#: negligible (<1e-5 relative).
GRID_SNAP_TOL = 1e-5


@dataclass(frozen=True)
class Base2Kernel:
    """Paper kernel (Eq. 9): ``kappa(dt) = base**(-dt / tau)``.

    The paper's kernel uses ``base=2`` (the default) so spike times live
    in the log2 domain; ``base=e`` reproduces the "This work, base e"
    column of Table 2, which trains CAT with the T2FSNN-shaped kernel.
    One kernel instance is shared by *all* layers (no per-layer t_d/tau).
    """

    tau: float = 4.0
    base: float = 2.0

    def value(self, dt) -> np.ndarray:
        return np.power(self.base, -np.asarray(dt, dtype=np.float64) / self.tau)

    def threshold(self, dt, theta0: float = 1.0) -> np.ndarray:
        """Dynamic threshold theta(dt) = theta0 * kappa(dt) (Eq. 6)."""
        return theta0 * self.value(dt)

    def spike_time(self, x, theta0: float = 1.0, window: int | None = None):
        """First integer step ``dt >= 0`` with ``x >= theta0 * kappa(dt)``.

        Vectorised; returns ``NO_SPIKE`` where the value never crosses the
        threshold inside ``window`` steps (i.e. x < theta0 * kappa(window)).
        """
        x = np.asarray(x, dtype=np.float64)
        positive = x > 0
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            raw = self.tau * np.log(theta0 / np.where(positive, x, 1.0)) / math.log(self.base)
        dt = np.ceil(raw - GRID_SNAP_TOL)  # on-grid values (incl. float32-rounded) fire on time
        dt = np.maximum(dt, 0.0)
        finite = np.isfinite(dt)
        out = np.where(finite, dt, 0).astype(np.int64)
        no_fire = ~positive | ~finite
        if window is not None:
            no_fire |= out > window
        out = np.where(no_fire, NO_SPIKE, out)
        return out

    def decode(self, dt, theta0: float = 1.0) -> np.ndarray:
        """Value represented by a spike at relative time ``dt`` (Eq. 7 integrand)."""
        dt = np.asarray(dt)
        vals = theta0 * self.value(np.maximum(dt, 0))
        return np.where(dt == NO_SPIKE, 0.0, vals)

    def grid(self, window: int, theta0: float = 1.0) -> np.ndarray:
        """All representable values within a window, descending (dt = 0..window)."""
        return theta0 * self.value(np.arange(window + 1))

    @property
    def is_shift_compatible(self) -> bool:
        """True for base 2 with log2(tau) integer (Eq. 18): LUT+shift PEs."""
        if self.tau <= 0 or self.base != 2.0:
            return False
        log_tau = math.log2(self.tau)
        return abs(log_tau - round(log_tau)) < 1e-9


@dataclass(frozen=True)
class ExpKernel:
    """T2FSNN baseline kernel (Eq. 5): ``eps(dt) = exp(-(dt - t_d) / tau)``.

    ``t_d`` delays the decay so early-arriving spikes in the next layer's
    integration window decode to values above 1; the baseline tunes
    ``(t_d, tau)`` per layer post-conversion.
    """

    tau: float = 20.0
    t_d: float = 0.0

    def value(self, dt) -> np.ndarray:
        return np.exp(-(np.asarray(dt, dtype=np.float64) - self.t_d) / self.tau)

    def threshold(self, dt, theta0: float = 1.0) -> np.ndarray:
        return theta0 * self.value(dt)

    def spike_time(self, x, theta0: float = 1.0, window: int | None = None):
        """First integer step with ``x >= theta0 * eps(dt)`` (cf. Eq. 8)."""
        x = np.asarray(x, dtype=np.float64)
        positive = x > 0
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            raw = self.tau * np.log(theta0 / np.where(positive, x, 1.0)) + self.t_d
        dt = np.ceil(raw - GRID_SNAP_TOL)
        dt = np.maximum(dt, 0.0)
        finite = np.isfinite(dt)
        out = np.where(finite, dt, 0).astype(np.int64)
        no_fire = ~positive | ~finite
        if window is not None:
            no_fire |= out > window
        return np.where(no_fire, NO_SPIKE, out)

    def decode(self, dt, theta0: float = 1.0) -> np.ndarray:
        dt = np.asarray(dt)
        vals = theta0 * self.value(np.maximum(dt, 0))
        return np.where(dt == NO_SPIKE, 0.0, vals)

    def grid(self, window: int, theta0: float = 1.0) -> np.ndarray:
        return theta0 * self.value(np.arange(window + 1))

    @property
    def is_shift_compatible(self) -> bool:
        return False  # base-e spike times never satisfy Eq. 16


def equivalent_base2_tau(exp_tau: float) -> float:
    """tau' such that 2**(-t/tau') == exp(-t/tau) (exponential identity).

    The paper notes kappa is "almost identical" to eps when the base is
    converted: exp(-t/tau) = 2**(-t * log2(e) / tau), so tau' = tau / log2(e).
    """
    return exp_tau / math.log2(math.e)

"""Conversion-aware-training configuration and activation schedule.

The paper's recipe (Sec. 3.1), for 200 epochs of VGG-16 training:

* epochs 0-9:     ReLU everywhere (training warm-up);
* epochs 10-169:  phi_Clip on every hidden layer (stable bulk training);
* epochs 170-199: phi_TTFS on every hidden layer (exact SNN simulation);
* LR 0.1 divided by 10 at epochs 80 / 120 / 160 (so the TTFS switch lands
  when LR has decayed to 1e-4 — switching earlier, at LR > 1e-3, crashes
  training per Fig. 3);
* phi_TTFS applied to the *input* of the first hidden layer from epoch 0
  to simulate the image being presented as spikes.

Table 1 ablates three nested component sets:

* method "I":        phi_Clip only (never switch to TTFS, raw input);
* method "I+II":     phi_Clip + TTFS-encoded input;
* method "I+II+III": the full recipe above.

:class:`CATConfig` captures all of this and offers ``scaled()`` to shrink
the schedule proportionally for CPU-budget runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

METHODS = ("I", "I+II", "I+II+III")


@dataclass(frozen=True)
class CATConfig:
    """Hyper-parameters of a conversion-aware training run."""

    # TTFS coding parameters (paper hardware point: T=24, tau=4, theta0=1).
    # base=2 is the paper's kernel (Eq. 9); base=e reproduces the Table 2
    # "This work, base e" training variant.
    window: int = 24
    tau: float = 4.0
    theta0: float = 1.0
    base: float = 2.0

    # Which CAT components are active (Table 1)
    method: str = "I+II+III"

    # Epoch schedule
    epochs: int = 200
    relu_epochs: int = 10          # epochs trained with ReLU before clip
    ttfs_epoch: int = 170          # first epoch with hidden phi_TTFS (method III)

    # Optimisation (paper: SGD 0.1, momentum .9, wd 5e-4, /10 @ 80/120/160)
    lr: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 5e-4
    milestones: Tuple[int, ...] = (80, 120, 160)
    lr_gamma: float = 0.1
    batch_size: int = 128
    augment: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}, got {self.method!r}")
        if not 0 < self.tau:
            raise ValueError("tau must be positive")
        if self.window <= 0:
            raise ValueError("window (T) must be positive")
        if not 0 <= self.relu_epochs <= self.epochs:
            raise ValueError("relu_epochs outside [0, epochs]")

    # ------------------------------------------------------------------
    @property
    def uses_input_encoding(self) -> bool:
        """Component II: TTFS activation on the network input."""
        return self.method in ("I+II", "I+II+III")

    @property
    def uses_hidden_ttfs(self) -> bool:
        """Component III: TTFS activation on all hidden layers."""
        return self.method == "I+II+III"

    def stage_at(self, epoch: int) -> str:
        """Hidden-layer activation kind in effect during ``epoch``."""
        if epoch < self.relu_epochs:
            return "relu"
        if self.uses_hidden_ttfs and epoch >= self.ttfs_epoch:
            return "ttfs"
        return "clip"

    def stages(self) -> list[tuple[int, str]]:
        """(start_epoch, kind) transitions over the whole run."""
        transitions = [(0, "relu" if self.relu_epochs > 0 else "clip")]
        if self.relu_epochs > 0:
            transitions.append((self.relu_epochs, "clip"))
        if self.uses_hidden_ttfs and self.ttfs_epoch < self.epochs:
            transitions.append((self.ttfs_epoch, "ttfs"))
        return transitions

    # ------------------------------------------------------------------
    def scaled(self, epochs: int, **overrides) -> "CATConfig":
        """Proportionally compress the 200-epoch paper schedule.

        Keeps the structural relations intact: the TTFS switch stays after
        the final LR drop, the ReLU warm-up stays at 5% of the run.
        """
        ratio = epochs / self.epochs
        scaled_milestones = tuple(
            max(1, round(m * ratio)) for m in self.milestones
        )
        values = dict(
            epochs=epochs,
            relu_epochs=max(1, round(self.relu_epochs * ratio)),
            ttfs_epoch=min(epochs - 1, max(1, round(self.ttfs_epoch * ratio))),
            milestones=scaled_milestones,
        )
        values.update(overrides)
        return replace(self, **values)

    def with_(self, **overrides) -> "CATConfig":
        """Functional update helper."""
        return replace(self, **overrides)


def paper_config(method: str = "I+II+III", window: int = 24, tau: float = 4.0,
                 **overrides) -> CATConfig:
    """The exact configuration described in Sec. 3.1 of the paper."""
    return CATConfig(window=window, tau=tau, method=method, **overrides)

"""Data-representation error analysis (paper Fig. 2).

Fig. 2(a) plots the three CAT activations over the input range; Fig. 2(b)
plots each activation's deviation from the value the converted SNN will
actually represent (the TTFS spike-time grid).  phi_TTFS is error-free by
construction; ReLU and clip show the staircase-shaped residual error that
motivates the final TTFS training stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .activations import clip_array, ttfs_quantize_array


@dataclass(frozen=True)
class ActivationCurves:
    """Sampled activation values and conversion errors over an input sweep."""

    inputs: np.ndarray
    activations: Dict[str, np.ndarray]
    errors: Dict[str, np.ndarray]

    def max_error(self, kind: str) -> float:
        return float(np.max(self.errors[kind]))

    def mean_error(self, kind: str) -> float:
        return float(np.mean(self.errors[kind]))


def activation_curves(
    window: int = 24,
    tau: float = 4.0,
    theta0: float = 1.0,
    x_max: float = 1.2,
    num_points: int = 481,
) -> ActivationCurves:
    """Reproduce Fig. 2: activations and SNN-representation errors.

    The SNN reference representation of an ANN activation ``a`` is
    ``ttfs_quantize(a)`` — what the spike emitted for ``a`` decodes to in
    the next layer.  The error of activation phi is
    ``|phi(x) - ttfs_quantize(phi(x))|`` plus the saturation mismatch for
    values outside the coding range, which simplifies to
    ``|phi(x) - ttfs_quantize(x)|`` for these monotone activations.
    """
    xs = np.linspace(0.0, x_max, num_points)
    snn_repr = ttfs_quantize_array(xs, window, tau, theta0)
    acts = {
        "relu": np.maximum(xs, 0.0),
        "clip": clip_array(xs, theta0),
        "ttfs": ttfs_quantize_array(xs, window, tau, theta0),
    }
    errors = {kind: np.abs(a - snn_repr) for kind, a in acts.items()}
    return ActivationCurves(inputs=xs, activations=acts, errors=errors)


def layerwise_conversion_error(ann_acts, snn_acts) -> list[float]:
    """Mean absolute error between matched ANN / SNN layer activations."""
    if len(ann_acts) != len(snn_acts):
        raise ValueError("activation lists must align layer-by-layer")
    return [float(np.mean(np.abs(a - s))) for a, s in zip(ann_acts, snn_acts)]

"""The conversion-aware training loop (paper Sec. 3.1).

:class:`CATTrainer` drives a :class:`~repro.nn.vgg.VGG` model through the
activation schedule of a :class:`~repro.cat.schedule.CATConfig`:

1. builds SGD (momentum 0.9, weight decay 5e-4) + multi-step LR;
2. swaps hidden activations ReLU -> phi_Clip -> phi_TTFS at the scheduled
   epochs, and installs phi_TTFS input encoding when component II is on;
3. records a per-epoch history (loss, train/test accuracy, stage, lr)
   that the Fig. 3 benchmark replays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..data import Dataset, make_train_loader
from ..nn.vgg import VGG
from ..optim import SGD, MultiStepLR
from ..tensor import Tensor, accuracy, cross_entropy
from .activations import make_activation
from .schedule import CATConfig


@dataclass
class EpochRecord:
    epoch: int
    stage: str
    lr: float
    train_loss: float
    train_acc: float
    test_acc: float
    seconds: float
    #: Training-phase throughput (train images / optimisation seconds),
    #: excluding evaluation.  0.0 in records from older checkpoints.
    images_per_s: float = 0.0


@dataclass
class TrainResult:
    """Output of a CAT run: the trained model plus the training history."""

    model: VGG
    config: CATConfig
    history: List[EpochRecord] = field(default_factory=list)

    @property
    def final_test_acc(self) -> float:
        return self.history[-1].test_acc if self.history else float("nan")

    @property
    def best_test_acc(self) -> float:
        return max((r.test_acc for r in self.history), default=float("nan"))

    def accuracy_curve(self) -> np.ndarray:
        return np.array([r.test_acc for r in self.history])

    def crashed(self, floor: float | None = None) -> bool:
        """Heuristic used by the Fig. 3 analysis: training counts as
        crashed when accuracy after the TTFS switch collapses below the
        chance-adjacent ``floor``."""
        if not self.history:
            return False
        switch = self.config.ttfs_epoch
        post = [r.test_acc for r in self.history if r.epoch >= switch]
        if not post:
            return False
        if floor is None:
            pre = [r.test_acc for r in self.history if r.epoch < switch]
            floor = 0.5 * max(pre) if pre else 0.0
        return min(post) < floor


def evaluate(model: VGG, images: np.ndarray, labels: np.ndarray,
             batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` over an array dataset (eval mode)."""
    was_training = model.training
    model.eval()
    n = len(labels)
    # One preallocated prediction buffer; argmax writes straight into
    # its batch slice, so the loop does no per-batch reductions or
    # device->python int round-trips.
    preds = np.empty(n, dtype=np.intp)
    for start in range(0, n, batch_size):
        x = images[start : start + batch_size]
        logits = model(Tensor(x))
        np.argmax(logits.data, axis=1, out=preds[start : start + len(x)])
    model.train(was_training)
    return float(np.mean(preds == labels))


class CATTrainer:
    """Run conversion-aware training on a model + dataset pair."""

    def __init__(self, model: VGG, dataset: Dataset, config: CATConfig,
                 verbose: bool = False, prefetch: Optional[int] = None):
        self.model = model
        self.dataset = dataset
        self.config = config
        self.verbose = verbose
        self.optimizer = SGD(
            model.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        self.scheduler = MultiStepLR(
            self.optimizer, milestones=config.milestones, gamma=config.lr_gamma
        )
        # ``dataset`` may be an in-memory Dataset or a ShardedDataset;
        # the dispatch picks slicing vs. streaming gathers (and the
        # prefetch default) per source.  Batches are bit-identical
        # either way for a fixed seed.
        self._loader = make_train_loader(
            dataset,
            batch_size=config.batch_size,
            shuffle=True,
            augment=config.augment,
            seed=config.seed,
            prefetch=prefetch,
        )
        self._stage: Optional[str] = None

    # ------------------------------------------------------------------
    def _apply_stage(self, epoch: int) -> str:
        """Install the scheduled activation for ``epoch`` if it changed."""
        cfg = self.config
        stage = cfg.stage_at(epoch)
        if stage != self._stage:
            fn = make_activation(stage, cfg.window, cfg.tau, cfg.theta0, cfg.base)
            self.model.set_hidden_activation(fn, stage)
            self._stage = stage
        return stage

    def _install_input_encoding(self) -> None:
        cfg = self.config
        if cfg.uses_input_encoding:
            fn = make_activation("ttfs", cfg.window, cfg.tau, cfg.theta0, cfg.base)
            self.model.set_input_encoding(fn, "ttfs-input")
        else:
            self.model.set_input_encoding(lambda t: t, "identity")

    # ------------------------------------------------------------------
    def train_epoch(self, epoch: int) -> tuple[float, float]:
        """One optimisation epoch; returns (mean loss, train accuracy)."""
        self.model.train()
        losses, accs = [], []
        for x, y in self._loader:
            logits = self.model(Tensor(x))
            loss = cross_entropy(logits, y)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
            accs.append(accuracy(logits, y))
        return float(np.mean(losses)), float(np.mean(accs))

    def run(self) -> TrainResult:
        """Execute the full schedule and return the trained model + history."""
        cfg = self.config
        self._install_input_encoding()
        result = TrainResult(model=self.model, config=cfg)
        num_train = len(self._loader.labels)
        for epoch in range(cfg.epochs):
            start = time.perf_counter()
            stage = self._apply_stage(epoch)
            lr = self.scheduler.step(epoch)
            train_loss, train_acc = self.train_epoch(epoch)
            train_seconds = time.perf_counter() - start
            test_acc = evaluate(self.model, self.dataset.test_x, self.dataset.test_y)
            record = EpochRecord(
                epoch=epoch,
                stage=stage,
                lr=lr,
                train_loss=train_loss,
                train_acc=train_acc,
                test_acc=test_acc,
                seconds=time.perf_counter() - start,
                images_per_s=num_train / train_seconds if train_seconds else 0.0,
            )
            result.history.append(record)
            if self.verbose:
                print(
                    f"epoch {epoch:3d} [{stage:4s}] lr={lr:.4g} "
                    f"loss={train_loss:.4f} train={train_acc:.3f} "
                    f"test={test_acc:.3f} ({record.seconds:.1f}s, "
                    f"{record.images_per_s:.0f} img/s)"
                )
        return result


def train_cat(model: VGG, dataset: Dataset, config: CATConfig,
              verbose: bool = False,
              prefetch: Optional[int] = None) -> TrainResult:
    """Convenience wrapper: build a trainer and run it."""
    return CATTrainer(model, dataset, config, verbose=verbose,
                      prefetch=prefetch).run()

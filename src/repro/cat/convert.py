"""ANN-to-SNN conversion (paper Sec. 3.1, last paragraph).

Conversion does three things:

1. **Batch-norm fusion** — each ``Conv2d (no bias) -> BatchNorm2d`` pair
   becomes a single convolution with
   ``W' = W * gamma / sqrt(var + eps)`` (per output channel) and
   ``b' = beta - gamma * mean / sqrt(var + eps)``.
2. **Output weight normalisation** [5] — the output layer has no
   activation, so its weights/bias are scaled by the maximum
   pre-activation observed on a calibration batch, keeping the membrane
   potentials of the readout layer inside the coding range.
3. **Spec extraction** — the network is lowered to a flat list of
   :class:`LayerSpec` records consumed by the value-domain evaluator
   below, the event-driven simulator (:mod:`repro.snn`) and the hardware
   model (:mod:`repro.hw`).

The value-domain evaluator exploits the central property of one-spike
TTFS coding with matched kernels: each layer's spike train is fully
described by the decoded activation values, so a layer-by-layer
"affine -> TTFS quantise" pass is *exactly* equivalent to the temporal
simulation.  The equivalence is verified spike-by-spike against
:mod:`repro.snn` in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..engine.executor import run_value_pipeline
from ..events import EventStream
from ..nn.layers import AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d
from ..nn.vgg import VGG
from .activations import TTFSActivation
from .kernels import Base2Kernel
from .schedule import CATConfig


@dataclass
class LayerSpec:
    """One lowered SNN layer.

    ``kind`` is one of ``conv`` / ``linear`` / ``maxpool`` / ``avgpool`` /
    ``flatten``.  Weight layers carry fused parameters; ``is_output``
    marks the readout layer, which integrates PSPs but never fires.
    """

    kind: str
    weight: Optional[np.ndarray] = None
    bias: Optional[np.ndarray] = None
    stride: int = 1
    padding: int = 0
    kernel_size: int = 0
    is_output: bool = False

    @property
    def is_weight_layer(self) -> bool:
        return self.kind in ("conv", "linear")

    def synapse_count(self) -> int:
        return 0 if self.weight is None else int(self.weight.size)


def fuse_conv_bn(conv: Conv2d, bn: BatchNorm2d) -> tuple[np.ndarray, np.ndarray]:
    """Fold BN statistics into convolution weights (returns W', b')."""
    scale = bn.weight.data / np.sqrt(bn.running_var + bn.eps)
    weight = conv.weight.data * scale[:, None, None, None]
    base_bias = conv.bias.data if conv.bias is not None else 0.0
    bias = bn.bias.data + scale * (base_bias - bn.running_mean)
    return weight.astype(np.float32), bias.astype(np.float32)


def extract_layer_specs(model: VGG) -> List[LayerSpec]:
    """Lower a VGG model into fused LayerSpec records, in forward order."""
    specs: List[LayerSpec] = []
    feature_mods = list(model.features)
    i = 0
    while i < len(feature_mods):
        mod = feature_mods[i]
        if isinstance(mod, Conv2d):
            if i + 1 < len(feature_mods) and isinstance(feature_mods[i + 1], BatchNorm2d):
                weight, bias = fuse_conv_bn(mod, feature_mods[i + 1])
                i += 1  # consume the BN too
            else:
                weight = mod.weight.data.copy()
                bias = (
                    mod.bias.data.copy()
                    if mod.bias is not None
                    else np.zeros(mod.out_channels, dtype=np.float32)
                )
            specs.append(
                LayerSpec(
                    kind="conv",
                    weight=weight,
                    bias=bias,
                    stride=mod.stride,
                    padding=mod.padding,
                    kernel_size=mod.kernel_size,
                )
            )
        elif isinstance(mod, MaxPool2d):
            specs.append(LayerSpec(kind="maxpool", kernel_size=mod.kernel_size,
                                   stride=mod.stride))
        elif isinstance(mod, AvgPool2d):
            specs.append(LayerSpec(kind="avgpool", kernel_size=mod.kernel_size,
                                   stride=mod.stride))
        # BatchNorm (already fused), ActivationSlot, Dropout: structural no-ops
        i += 1

    for mod in model.classifier:
        if isinstance(mod, Flatten):
            specs.append(LayerSpec(kind="flatten"))
        elif isinstance(mod, Linear):
            bias = (
                mod.bias.data.copy()
                if mod.bias is not None
                else np.zeros(mod.out_features, dtype=np.float32)
            )
            specs.append(LayerSpec(kind="linear", weight=mod.weight.data.copy(),
                                   bias=bias))
        elif isinstance(mod, Dropout):
            continue

    weight_specs = [s for s in specs if s.is_weight_layer]
    if not weight_specs:
        raise ValueError("model contains no weight layers to convert")
    weight_specs[-1].is_output = True
    return specs


@dataclass
class ConvertedSNN:
    """A converted TTFS spiking network, evaluated in the value domain.

    ``forward_value`` applies input TTFS encoding, then for every weight
    layer computes the fused affine transform followed by TTFS
    quantisation (the decode of the layer's spike output); the readout
    layer returns raw membrane potentials.
    """

    layers: List[LayerSpec]
    config: CATConfig
    activation: TTFSActivation = field(init=False)
    output_scale: float = 1.0

    def __post_init__(self):
        self.activation = TTFSActivation(
            window=self.config.window, tau=self.config.tau,
            theta0=self.config.theta0, base=self.config.base,
        )

    # ------------------------------------------------------------------
    @property
    def weight_layers(self) -> List[LayerSpec]:
        return [s for s in self.layers if s.is_weight_layer]

    @property
    def num_pipeline_stages(self) -> int:
        """Input-encoding window + one window per weight layer."""
        return len(self.weight_layers) + 1

    @property
    def latency_timesteps(self) -> int:
        """End-to-end latency in timesteps (Table 2 row 'Latency')."""
        return self.num_pipeline_stages * self.config.window

    def encode_input(self, x: np.ndarray) -> np.ndarray:
        """TTFS-encode the input image (pixels -> first-spike grid values)."""
        return self.activation.array(x)

    def input_events(self, x: np.ndarray) -> EventStream:
        """TTFS-encode the input into the sorted event-stream form.

        The representation the event backend and the hardware input
        generator consume: one ``(time, neuron)`` event per firing pixel
        under the network's coding kernel, time-sorted.
        """
        kernel = Base2Kernel(tau=self.config.tau, base=self.config.base)
        times = kernel.spike_time(np.asarray(x, dtype=np.float64),
                                  theta0=self.config.theta0,
                                  window=self.config.window)
        return EventStream.from_dense(times, self.config.window)

    def forward_value(self, x: np.ndarray, encode_input: bool = True) -> np.ndarray:
        """Run the SNN in the value domain; returns readout potentials."""
        if encode_input:
            x = self.encode_input(x)
        return run_value_pipeline(
            self.layers, x,
            hidden=lambda wi, z: self.activation.array(z),
            output=lambda z: z * self.output_scale)

    def layer_activations(self, x: np.ndarray, encode_input: bool = True
                          ) -> List[np.ndarray]:
        """Decoded activation of every weight layer (for analysis/tests)."""
        acts: List[np.ndarray] = []
        if encode_input:
            x = self.encode_input(x)
        acts.append(x)

        def _tap(transform):
            def apply(z):
                z = transform(z)
                acts.append(z)
                return z
            return apply

        hidden_tap = _tap(self.activation.array)
        run_value_pipeline(self.layers, x,
                           hidden=lambda wi, z: hidden_tap(z),
                           output=_tap(lambda z: z * self.output_scale))
        return acts

    # ------------------------------------------------------------------
    def accuracy(self, images: np.ndarray, labels: np.ndarray,
                 batch_size: int = 256) -> float:
        """Top-1 accuracy of the converted SNN."""
        correct = 0
        for start in range(0, len(labels), batch_size):
            out = self.forward_value(images[start : start + batch_size])
            correct += int((out.argmax(axis=1) == labels[start : start + batch_size]).sum())
        return correct / len(labels)


def apply_output_weight_norm(snn: ConvertedSNN, calibration: np.ndarray,
                             percentile: float = 100.0) -> float:
    """Scale the readout layer so its potentials stay in the coding range [5].

    Returns the normalisation factor lambda (max |pre-activation| on the
    calibration batch, or the given percentile of it).
    """
    out = snn.forward_value(calibration)
    mags = np.abs(out / max(snn.output_scale, 1e-12))
    lam = float(np.percentile(mags, percentile)) if percentile < 100 else float(mags.max())
    if lam <= 0:
        return 1.0
    snn.output_scale = 1.0 / lam
    return lam


def convert(model: VGG, config: CATConfig,
            calibration: Optional[np.ndarray] = None) -> ConvertedSNN:
    """Full conversion pipeline: fuse BN, lower to specs, normalise output."""
    model.eval()
    specs = extract_layer_specs(model)
    snn = ConvertedSNN(layers=specs, config=config)
    if calibration is not None:
        apply_output_weight_norm(snn, calibration)
    return snn


def conversion_loss(ann_acc: float, snn_acc: float) -> float:
    """Table 1's parenthesised quantity: acc_SNN - acc_ANN (negative = loss)."""
    return snn_acc - ann_acc

"""Numpy autograd engine: the training substrate for the reproduction."""

from .tensor import Tensor, as_tensor, concatenate, custom_op, stack, where
from .conv import avg_pool2d, col2im, conv2d, global_avg_pool2d, im2col, max_pool2d
from .functional import (
    accuracy,
    cross_entropy,
    log_softmax,
    mse_loss,
    one_hot,
    softmax,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "custom_op",
    "stack",
    "where",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "im2col",
    "col2im",
    "accuracy",
    "cross_entropy",
    "log_softmax",
    "softmax",
    "mse_loss",
    "one_hot",
]

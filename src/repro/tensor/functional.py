"""Loss functions and misc differentiable helpers."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax."""
    shifted_max = logits.data.max(axis=axis, keepdims=True)
    shifted = logits - Tensor(shifted_max)  # constant shift: gradient-safe
    exp = shifted.exp()
    return shifted - exp.sum(axis=axis, keepdims=True).log()


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(logits, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,)."""
    targets = np.asarray(targets)
    n = logits.data.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(n), targets]
    return -picked.mean()


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - target
    return (diff * diff).mean()


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = data.argmax(axis=-1)
    return float((pred == np.asarray(targets)).mean())


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    out = np.zeros((len(labels), num_classes), dtype=np.float32)
    out[np.arange(len(labels)), labels] = 1.0
    return out

"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class used by every layer in the
reproduction.  It is a deliberately small engine: a node holds a numpy
array, an optional gradient buffer, and a backward closure that scatters
the incoming gradient to its parents.  ``Tensor.backward()`` runs a
topological sort and applies the closures in reverse order.

The engine supports full numpy broadcasting.  Gradients flowing into a
broadcast operand are reduced back to the operand's shape with
:func:`_unbroadcast`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

DEFAULT_DTYPE = np.float32

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce python scalars / sequences / arrays to a numpy array."""
    if isinstance(value, np.ndarray):
        arr = value
    else:
        arr = np.asarray(value)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    elif arr.dtype == np.float64:
        arr = arr.astype(DEFAULT_DTYPE, copy=False)
    elif not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(DEFAULT_DTYPE, copy=False)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array contents.  Scalars and nested sequences are accepted.
    requires_grad:
        When True, ``backward()`` accumulates a gradient into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward = _backward
        self._parents = _parents
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut out of the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS topological sort (deep graphs overflow recursion).
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        self._accumulate(grad)
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None:
                    continue
                pgrad = _unbroadcast(
                    np.asarray(pgrad, dtype=parent.data.dtype), parent.data.shape
                )
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad
                if parent.requires_grad and parent._backward is None:
                    # Leaf: accumulate into .grad
                    if parent.grad is None:
                        parent.grad = pgrad.copy()
                    else:
                        parent.grad += pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g):
            return g, g

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        a, b = self, other

        def backward(g):
            return g * b.data, g * a.data

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        def backward(g):
            return (-g,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(g):
            return g, -g

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) - self

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data
        a, b = self, other

        def backward(g):
            return g / b.data, -g * a.data / (b.data * b.data)

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports python scalars")
        out_data = self.data**exponent
        base = self

        def backward(g):
            return (g * exponent * base.data ** (exponent - 1),)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data
        a, b = self, other

        def backward(g):
            ga = g @ np.swapaxes(b.data, -1, -2)
            gb = np.swapaxes(a.data, -1, -2) @ g
            return ga, gb

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g):
            return (g * out_data,)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g):
            return (g / self.data,)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g):
            return (g / (2.0 * out_data),)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g):
            return (g * mask,)

        return Tensor._make(self.data * mask, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g):
            return (g * (1.0 - out_data * out_data),)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            return (g * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(g):
            return (g * sign,)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to [low, high]; gradient passes inside the window."""
        mask = (self.data > low) & (self.data < high)

        def backward(g):
            return (g * mask,)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g):
            g = np.asarray(g)
            if axis is None:
                return (np.broadcast_to(g, shape).copy(),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                for ax in sorted(a % len(shape) for a in axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, shape).copy(),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centred = self - self.mean(axis=axis, keepdims=True)
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        src = self.data

        def backward(g):
            g = np.asarray(g)
            if axis is None:
                full = np.broadcast_to(out_data, src.shape)
                mask = src == full
                return (g * mask / mask.sum(),)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = src == expanded
            counts = mask.sum(axis=axis, keepdims=True)
            gg = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % src.ndim for a in axes):
                    gg = np.expand_dims(gg, ax)
            return (mask * gg / counts,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        orig = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(g):
            return (g.reshape(orig),)

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(g):
            return (g.transpose(inverse),)

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        shape = self.data.shape
        new_shape = shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]
        src_shape = self.data.shape

        def backward(g):
            full = np.zeros(src_shape, dtype=g.dtype)
            np.add.at(full, idx, g)
            return (full,)

        return Tensor._make(out_data, (self,), backward)

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions by ``pad`` on each side."""
        if pad == 0:
            return self
        width = [(0, 0)] * (self.data.ndim - 2) + [(pad, pad), (pad, pad)]
        out_data = np.pad(self.data, width)

        def backward(g):
            sl = [slice(None)] * (g.ndim - 2) + [slice(pad, -pad), slice(pad, -pad)]
            return (g[tuple(sl)],)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Comparison helpers (no gradient)
    # ------------------------------------------------------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)


def as_tensor(value: ArrayLike) -> Tensor:
    """Wrap ``value`` in a Tensor if it is not one already."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g):
        return tuple(np.split(g, splits, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        pieces = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select: ``condition`` is a boolean numpy mask."""
    a = as_tensor(a)
    b = as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(g):
        return g * cond, g * (~cond)

    return Tensor._make(out_data, (a, b), backward)


def custom_op(
    inputs: Sequence[Tensor],
    forward_value: np.ndarray,
    backward: Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]],
) -> Tensor:
    """Build a graph node with user-supplied forward value and backward rule.

    This is the extension point used by the CAT activations, which need
    straight-through-style gradients that do not follow from the forward
    computation.
    """
    return Tensor._make(np.asarray(forward_value), tuple(inputs), backward)

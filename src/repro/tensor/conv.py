"""im2col-based convolution and pooling primitives with autograd support.

These are the compute-heavy primitives of the training substrate.  Forward
and backward are both expressed as matrix multiplies over an im2col
unfolding, which is the fastest portable formulation in pure numpy.

Layout convention: NCHW (batch, channels, height, width), matching the
description of feature maps in the paper's VGG-16 workloads.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..events import scatter_add_rows
from .tensor import Tensor


def _out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``x`` (N, C, H, W) into columns of shape (N*OH*OW, C*K*K)."""
    n, c, h, w = x.shape
    oh = _out_size(h, kernel, stride, pad)
    ow = _out_size(w, kernel, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Strided view: (N, C, OH, OW, K, K)
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kernel * kernel)
    return np.ascontiguousarray(cols), (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold columns back into an image, accumulating overlapping patches."""
    n, c, h, w = x_shape
    oh = _out_size(h, kernel, stride, pad)
    ow = _out_size(w, kernel, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
    for ki in range(kernel):
        h_end = ki + stride * oh
        for kj in range(kernel):
            w_end = kj + stride * ow
            padded[:, :, ki:h_end:stride, kj:w_end:stride] += cols6[:, :, :, :, ki, kj]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int, pad: int) -> Tensor:
    """2-D convolution, NCHW, square kernel.

    Parameters
    ----------
    x:       input tensor (N, C_in, H, W)
    weight:  filter tensor (C_out, C_in, K, K)
    bias:    optional bias (C_out,)
    """
    n = x.data.shape[0]
    c_out, c_in, k, _ = weight.data.shape
    cols, (oh, ow) = im2col(x.data, k, stride, pad)
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C_in*K*K)
    out = cols @ w_mat.T  # (N*OH*OW, C_out)
    if bias is not None:
        out = out + bias.data
    out_data = out.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)

    x_shape = x.data.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g):
        # g: (N, C_out, OH, OW) -> (N*OH*OW, C_out)
        g_mat = g.transpose(0, 2, 3, 1).reshape(-1, c_out)
        g_cols = g_mat @ w_mat  # (N*OH*OW, C_in*K*K)
        gx = col2im(g_cols, x_shape, k, stride, pad)
        gw = (g_mat.T @ cols).reshape(weight.data.shape)
        if bias is None:
            return gx, gw
        gb = g_mat.sum(axis=0)
        return gx, gw, gb

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling, NCHW, square window, no padding."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.data.shape
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.data.strides
    view = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    patches = view.reshape(n, c, oh, ow, kernel * kernel)
    arg = patches.argmax(axis=-1)
    out_data = np.take_along_axis(patches, arg[..., None], axis=-1)[..., 0]
    x_shape = x.data.shape

    def backward(g):
        hi = arg // kernel + stride * np.arange(oh).reshape(1, 1, oh, 1)
        wj = arg % kernel + stride * np.arange(ow).reshape(1, 1, 1, ow)
        if stride >= kernel:
            # Disjoint windows: every input cell receives at most one
            # contribution, so the segment-sum scatter (shared with the
            # engine's event plans) is exact — bitwise identical to the
            # old np.indices + np.add.at formulation at a fraction of
            # the cost.
            gx = np.zeros((n * c * h * w, 1), dtype=g.dtype)
            plane = (np.arange(n * c) * h).reshape(n, c, 1, 1)
            rows = ((plane + hi) * w + wj).ravel()
            scatter_add_rows(gx, rows, g.reshape(-1, 1))
            return (gx.reshape(x_shape),)
        # Overlapping windows can land 3+ float32 contributions on one
        # cell, where a widened segment sum no longer reproduces the
        # sequential float32 rounding — keep the reference scatter.
        gx = np.zeros(x_shape, dtype=g.dtype)
        ni = np.arange(n).reshape(n, 1, 1, 1)
        ci = np.arange(c).reshape(1, c, 1, 1)
        np.add.at(gx, (ni, ci, hi, wj), g)
        return (gx,)

    return Tensor._make(np.ascontiguousarray(out_data), (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling, NCHW, square window, no padding."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.data.shape
    oh = _out_size(h, kernel, stride, 0)
    ow = _out_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.data.strides
    view = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    out_data = view.mean(axis=(4, 5))
    x_shape = x.data.shape
    scale = 1.0 / (kernel * kernel)

    def backward(g):
        gk = g * scale
        if stride == kernel and h == kernel * oh and w == kernel * ow:
            # Windows tile the input exactly (the VGG 2x2 case): the
            # gradient is gk with every cell replicated kernel x kernel
            # — one vectorised expansion, no zeros buffer, bitwise
            # identical to the K*K accumulation loop (each cell
            # received exactly one += against zero).
            return (gk.repeat(kernel, axis=2).repeat(kernel, axis=3),)
        gx = np.zeros(x_shape, dtype=g.dtype)
        if stride >= kernel:
            # Disjoint windows with uncovered remainder cells or gaps:
            # one strided-view broadcast writes each window cell once
            # and leaves the rest zero.
            gn, gc, gh, gw = gx.strides
            window = np.lib.stride_tricks.as_strided(
                gx, shape=(n, c, oh, ow, kernel, kernel),
                strides=(gn, gc, gh * stride, gw * stride, gh, gw))
            window[...] = gk[..., None, None]
            return (gx,)
        # Overlapping windows accumulate; keep the per-tap strided adds
        # (one vectorised += per (ki, kj), same order as before).
        for ki in range(kernel):
            for kj in range(kernel):
                gx[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride] += gk
        return (gx,)

    return Tensor._make(np.ascontiguousarray(out_data), (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions -> (N, C)."""
    return x.mean(axis=(2, 3))

"""Synthetic datasets and loading utilities (CIFAR/Tiny-ImageNet stand-ins)."""

from .datasets import (
    Dataset,
    available,
    load,
    make_dataset,
    mini_cifar10,
    mini_cifar100,
    mini_tiny_imagenet,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_tiny_imagenet,
)
from .loader import DataLoader
from .transforms import normalize, random_crop, random_hflip

__all__ = [
    "Dataset",
    "DataLoader",
    "available",
    "load",
    "make_dataset",
    "mini_cifar10",
    "mini_cifar100",
    "mini_tiny_imagenet",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "synthetic_tiny_imagenet",
    "normalize",
    "random_crop",
    "random_hflip",
]

"""Synthetic datasets and loading utilities (CIFAR/Tiny-ImageNet stand-ins)."""

from .datasets import (
    Dataset,
    available,
    load,
    make_dataset,
    mini_cifar10,
    mini_cifar100,
    mini_tiny_imagenet,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_tiny_imagenet,
)
from .loader import DataLoader, StreamingDataLoader, make_train_loader
from .shards import (
    SHARD_FORMAT_VERSION,
    ShardedDataset,
    ShardError,
    open_shards,
    write_shards,
)
from .transforms import normalize, random_crop, random_hflip

__all__ = [
    "Dataset",
    "DataLoader",
    "StreamingDataLoader",
    "make_train_loader",
    "SHARD_FORMAT_VERSION",
    "ShardedDataset",
    "ShardError",
    "open_shards",
    "write_shards",
    "available",
    "load",
    "make_dataset",
    "mini_cifar10",
    "mini_cifar100",
    "mini_tiny_imagenet",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "synthetic_tiny_imagenet",
    "normalize",
    "random_crop",
    "random_hflip",
]

"""Synthetic class-conditional image datasets.

The paper evaluates on CIFAR-10, CIFAR-100 and Tiny-ImageNet.  Those
datasets (and the network to download them) are unavailable offline, so
this module generates *procedural* stand-ins with matched geometry:

* class-conditional smooth "prototype" textures (low-frequency random
  fields per class, optionally several modes per class),
* instance variation from random shifts, contrast/brightness jitter and
  additive noise.

The generators are deterministic given a seed.  They preserve what the
paper's experiments actually measure — the *relative* accuracy between
training recipes and the degradation introduced by discretising
activations — because those effects depend on decision-boundary geometry
rather than on natural-image statistics.  Absolute accuracies are not
comparable to the paper's (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np
from scipy import ndimage


@dataclass
class Dataset:
    """An in-memory split dataset of NCHW float32 images in [0, 1]."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int
    name: str = "synthetic"
    meta: Dict = field(default_factory=dict)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.train_x.shape[1:])

    def train_head(self, n: int) -> np.ndarray:
        """First ``n`` train images (same surface as ShardedDataset)."""
        return self.train_x[:n]

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name}, classes={self.num_classes}, "
            f"train={len(self.train_y)}, test={len(self.test_y)}, "
            f"shape={self.image_shape})"
        )


def _class_prototypes(
    rng: np.random.Generator,
    num_classes: int,
    modes_per_class: int,
    channels: int,
    size: int,
    smoothness: float,
) -> np.ndarray:
    """Smooth random fields: (classes, modes, C, H, W), zero-mean unit-ish."""
    raw = rng.standard_normal((num_classes, modes_per_class, channels, size, size))
    smooth = ndimage.gaussian_filter(
        raw, sigma=(0, 0, 0, smoothness, smoothness), mode="wrap"
    )
    # Normalise each prototype to unit std so class difficulty is uniform.
    std = smooth.std(axis=(-1, -2, -3), keepdims=True)
    return (smooth / np.maximum(std, 1e-8)).astype(np.float32)


def roll_images(images: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """Circularly shift each NCHW image by its own (dy, dx).

    Batched equivalent of ``np.roll(images[i], tuple(shifts[i]), axis=(1, 2))``
    for every ``i``: a roll by ``s`` reads element ``(j - s) % size``, so two
    ``take_along_axis`` gathers with per-image modular index rows reproduce
    the per-image loop bit for bit.
    """
    n, _, h, w = images.shape
    rows = (np.arange(h)[None, :] - shifts[:, 0:1]) % h
    cols = (np.arange(w)[None, :] - shifts[:, 1:2]) % w
    out = np.take_along_axis(images, rows[:, None, :, None], axis=2)
    return np.take_along_axis(out, cols[:, None, None, :], axis=3)


def _render(
    rng: np.random.Generator,
    prototypes: np.ndarray,
    labels: np.ndarray,
    size: int,
    noise_std: float,
    max_shift: int,
) -> np.ndarray:
    """Render one image per label with instance-level variation."""
    num_classes, modes = prototypes.shape[:2]
    n = len(labels)
    channels = prototypes.shape[2]
    mode_pick = rng.integers(0, modes, size=n)
    shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
    contrast = rng.uniform(0.8, 1.2, size=n).astype(np.float32)
    brightness = rng.uniform(-0.1, 0.1, size=n).astype(np.float32)
    noise = rng.standard_normal((n, channels, size, size)).astype(np.float32)
    rolled = roll_images(prototypes[labels, mode_pick], shifts)
    images = (
        contrast[:, None, None, None] * rolled
        + brightness[:, None, None, None]
        + noise_std * noise
    )
    # Map roughly N(0,1) field to [0,1] pixel range.
    images = 0.5 + 0.22 * images
    return np.clip(images, 0.0, 1.0)


def make_dataset(
    num_classes: int,
    image_size: int,
    train_per_class: int,
    test_per_class: int,
    channels: int = 3,
    modes_per_class: int = 2,
    noise_std: float = 0.35,
    smoothness: float = 3.0,
    max_shift: int = 2,
    seed: int = 2022,
    name: str = "synthetic",
) -> Dataset:
    """Build a deterministic synthetic classification dataset.

    ``noise_std`` is the difficulty knob: higher values push class
    distributions together, which makes accuracy sensitive to activation
    precision — the property the conversion-loss experiments need.
    """
    rng = np.random.default_rng(seed)
    prototypes = _class_prototypes(
        rng, num_classes, modes_per_class, channels, image_size, smoothness
    )
    train_y = np.repeat(np.arange(num_classes), train_per_class)
    test_y = np.repeat(np.arange(num_classes), test_per_class)
    rng.shuffle(train_y)
    rng.shuffle(test_y)
    train_x = _render(rng, prototypes, train_y, image_size, noise_std, max_shift)
    test_x = _render(rng, prototypes, test_y, image_size, noise_std, max_shift)
    return Dataset(
        train_x=train_x,
        train_y=train_y.astype(np.int64),
        test_x=test_x,
        test_y=test_y.astype(np.int64),
        num_classes=num_classes,
        name=name,
        meta={
            "image_size": image_size,
            "channels": channels,
            "noise_std": noise_std,
            "seed": seed,
        },
    )


# ----------------------------------------------------------------------
# Named stand-ins for the paper's three datasets (full-geometry and mini)
# ----------------------------------------------------------------------

def synthetic_cifar10(train_per_class: int = 200, test_per_class: int = 50,
                      seed: int = 10) -> Dataset:
    """32x32x3, 10 classes — CIFAR-10 stand-in."""
    return make_dataset(10, 32, train_per_class, test_per_class, seed=seed,
                        name="synthetic-cifar10")


def synthetic_cifar100(train_per_class: int = 40, test_per_class: int = 10,
                       seed: int = 100) -> Dataset:
    """32x32x3, 100 classes — CIFAR-100 stand-in."""
    return make_dataset(100, 32, train_per_class, test_per_class, seed=seed,
                        name="synthetic-cifar100")


def synthetic_tiny_imagenet(train_per_class: int = 20, test_per_class: int = 5,
                            seed: int = 200) -> Dataset:
    """64x64x3, 200 classes — Tiny-ImageNet stand-in."""
    return make_dataset(200, 64, train_per_class, test_per_class, seed=seed,
                        name="synthetic-tiny-imagenet")


def mini_cifar10(seed: int = 11) -> Dataset:
    """16x16x3, 10 classes — CI-speed CIFAR-10 analogue."""
    return make_dataset(10, 16, 60, 20, noise_std=0.30, seed=seed,
                        name="mini-cifar10")


def mini_cifar100(seed: int = 101) -> Dataset:
    """16x16x3, 20 classes — CI-speed CIFAR-100 analogue (denser classes)."""
    return make_dataset(20, 16, 30, 10, noise_std=0.30, seed=seed,
                        name="mini-cifar100")


def mini_tiny_imagenet(seed: int = 201) -> Dataset:
    """24x24x3, 30 classes — CI-speed Tiny-ImageNet analogue."""
    return make_dataset(30, 24, 20, 8, noise_std=0.32, seed=seed,
                        name="mini-tiny-imagenet")


_REGISTRY = {
    "cifar10": synthetic_cifar10,
    "cifar100": synthetic_cifar100,
    "tiny-imagenet": synthetic_tiny_imagenet,
    "mini-cifar10": mini_cifar10,
    "mini-cifar100": mini_cifar100,
    "mini-tiny-imagenet": mini_tiny_imagenet,
}


def load(name: str, **kwargs) -> Dataset:
    """Load a named dataset stand-in (see ``available()``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_REGISTRY)}")
    return factory(**kwargs)


def available() -> list[str]:
    return sorted(_REGISTRY)

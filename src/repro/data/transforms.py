"""Image transforms on NCHW float arrays."""

from __future__ import annotations

import numpy as np


def random_crop(x: np.ndarray, pad: int, rng: np.random.Generator) -> np.ndarray:
    """Zero-pad by ``pad`` then crop back to the original size at a random offset."""
    if pad == 0:
        return x
    n, c, h, w = x.shape
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.empty_like(x)
    offsets = rng.integers(0, 2 * pad + 1, size=(n, 2))
    for i in range(n):
        dy, dx = offsets[i]
        out[i] = padded[i, :, dy : dy + h, dx : dx + w]
    return out


def random_hflip(x: np.ndarray, rng: np.random.Generator, p: float = 0.5) -> np.ndarray:
    """Flip each image horizontally with probability ``p``."""
    flip = rng.random(len(x)) < p
    out = x.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def normalize(x: np.ndarray, mean: float | np.ndarray, std: float | np.ndarray) -> np.ndarray:
    """Standardise pixels; accepts scalars or per-channel arrays."""
    mean = np.asarray(mean, dtype=x.dtype).reshape(1, -1, 1, 1)
    std = np.asarray(std, dtype=x.dtype).reshape(1, -1, 1, 1)
    return (x - mean) / std

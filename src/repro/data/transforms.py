"""Image transforms on NCHW float arrays.

The augmentation pair (``random_crop`` + ``random_hflip``) sits on the
training hot path: at paper scale it runs once per image per epoch, so
both are expressed as single batched gathers.  Each draws exactly the
same RNG sequence as its per-image reference (kept below as
``*_reference`` for the parity tests and the data-path benchmark) and
produces bitwise-identical output.
"""

from __future__ import annotations

import numpy as np


def random_crop(x: np.ndarray, pad: int, rng: np.random.Generator) -> np.ndarray:
    """Zero-pad by ``pad`` then crop back to the original size at a random offset.

    One gather over a sliding-window view of the padded batch: window
    ``(dy, dx)`` of image ``i`` *is* ``padded[i, :, dy:dy+h, dx:dx+w]``,
    so the fancy index below selects exactly what the per-image slice
    loop copied.
    """
    if pad == 0:
        return x
    n = x.shape[0]
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    offsets = rng.integers(0, 2 * pad + 1, size=(n, 2))
    # (N, C, 2p+1, 2p+1, H, W): axis 2/3 index the crop offset
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, x.shape[2:], axis=(2, 3))
    return np.ascontiguousarray(
        windows[np.arange(n), :, offsets[:, 0], offsets[:, 1]])


def random_crop_reference(x: np.ndarray, pad: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Per-image slice-loop reference for :func:`random_crop`."""
    if pad == 0:
        return x
    n, c, h, w = x.shape
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.empty_like(x)
    offsets = rng.integers(0, 2 * pad + 1, size=(n, 2))
    for i in range(n):
        dy, dx = offsets[i]
        out[i] = padded[i, :, dy : dy + h, dx : dx + w]
    return out


def random_hflip(x: np.ndarray, rng: np.random.Generator, p: float = 0.5) -> np.ndarray:
    """Flip each image horizontally with probability ``p``.

    Each output element is written exactly once: kept images copy
    straight across, flipped images gather with their last axis
    reversed — no full copy followed by a fancy-index re-assignment of
    the flipped subset.
    """
    flip = rng.random(len(x)) < p
    out = np.empty_like(x)
    keep = ~flip
    out[keep] = x[keep]
    out[flip] = x[flip, :, :, ::-1]
    return out


def random_hflip_reference(x: np.ndarray, rng: np.random.Generator,
                           p: float = 0.5) -> np.ndarray:
    """Copy-then-reassign reference for :func:`random_hflip`."""
    flip = rng.random(len(x)) < p
    out = x.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def augment_batch(x: np.ndarray, crop_pad: int, rng: np.random.Generator,
                  p: float = 0.5) -> np.ndarray:
    """``random_hflip(random_crop(x, crop_pad), p)`` as one fused gather.

    The crop gather already materialises a fresh batch, so the flip
    happens in place on that result instead of allocating (and filling)
    a second full-size array.  Draws the identical RNG sequence (crop
    offsets, then flip uniforms) and returns bitwise-identical output;
    the loader uses this on its per-batch hot path.
    """
    if not crop_pad:
        return random_hflip(x, rng, p)
    out = random_crop(x, crop_pad, rng)
    flip = rng.random(len(x)) < p
    out[flip] = out[flip, :, :, ::-1]
    return out


def normalize(x: np.ndarray, mean: float | np.ndarray, std: float | np.ndarray) -> np.ndarray:
    """Standardise pixels; accepts scalars or per-channel arrays."""
    mean = np.asarray(mean, dtype=x.dtype).reshape(1, -1, 1, 1)
    std = np.asarray(std, dtype=x.dtype).reshape(1, -1, 1, 1)
    return (x - mean) / std

"""Sharded on-disk dataset format for paper-scale training.

The in-memory :class:`~repro.data.datasets.Dataset` caps training-set
size at available RAM.  This module writes a dataset out as a directory
of fixed-size **shards** — uncompressed (``ZIP_STORED``) ``.npz`` files
whose members are memory-mappable through the same zip-layout parser the
serving fleet uses for weight bundles
(:func:`repro.nn.serialization.mmap_npz_members`) — plus a
``shards.json`` manifest describing the splits.

The format follows the repo's artifact discipline:

* **versioned** — the manifest records ``format_version``
  (:data:`SHARD_FORMAT_VERSION`); other versions are refused with an
  actionable :class:`ShardError` instead of mis-decoding.
* **digested** — each shard carries a content digest of its arrays
  (verified lazily, once, on first access) and the manifest carries a
  digest over its own body, so a tampered or torn directory fails
  loudly.  The manifest digest doubles as the dataset's content key for
  the pipeline stage cache.
* **streamable** — :meth:`ShardedDataset.gather_train` maps only the
  shards a batch touches and drops the mappings immediately after the
  row gather, so the training loop's resident set stays near one
  shard + one batch rather than the whole split.

``write_shards`` / ``open_shards`` round-trip losslessly: materialising
every split of an opened directory reproduces the source arrays bit for
bit, in order.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import ReproError
from ..nn.serialization import mmap_npz_members

PathLike = Union[str, Path]

#: Bump when the on-disk shard layout changes.  ``open_shards`` refuses
#: other versions with an actionable error instead of mis-decoding.
SHARD_FORMAT_VERSION = 1

#: Manifest file name inside a shard directory.
MANIFEST_NAME = "shards.json"


class ShardError(ReproError):
    """A shard directory could not be decoded (message says why)."""


def _digest(*parts) -> str:
    """Content hash under the shard format's namespace tag."""
    from ..engine.cache import digest  # deferred: engine is a heavier import

    return digest("dataset-shards", SHARD_FORMAT_VERSION, *parts)


def _shard_digest(images: np.ndarray, labels: np.ndarray) -> str:
    return _digest(np.asarray(images), np.asarray(labels))


def _manifest_digest(manifest: Dict) -> str:
    body = {k: v for k, v in manifest.items() if k != "digest"}
    return _digest(body)


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------

def write_shards(dataset, out_dir: PathLike, shard_size: int = 512,
                 force: bool = False) -> Path:
    """Write an in-memory dataset as a shard directory; returns the path.

    ``shard_size`` bounds the number of images per shard file (and hence
    the streaming reader's per-gather mapping footprint).  An existing
    shard directory is refused unless ``force`` is given.  The manifest
    is written last, atomically — its presence marks the directory
    complete, so a crashed write is recognisably unfinished.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    out_dir = Path(out_dir)
    manifest_path = out_dir / MANIFEST_NAME
    if manifest_path.exists() and not force:
        raise ShardError(
            f"{out_dir} already holds a shard manifest; pass force=True "
            f"(or --force) to overwrite it")
    out_dir.mkdir(parents=True, exist_ok=True)

    splits = {}
    arrays = {
        "train": (np.ascontiguousarray(dataset.train_x),
                  np.ascontiguousarray(dataset.train_y)),
        "test": (np.ascontiguousarray(dataset.test_x),
                 np.ascontiguousarray(dataset.test_y)),
    }
    for split, (images, labels) in arrays.items():
        if len(images) != len(labels):
            raise ValueError(f"{split}: images and labels length mismatch")
        entries: List[Dict] = []
        for start in range(0, len(labels), shard_size):
            chunk_x = images[start : start + shard_size]
            chunk_y = labels[start : start + shard_size]
            fname = f"{split}-{len(entries):05d}.npz"
            # np.savez => ZIP_STORED members, i.e. memory-mappable later.
            np.savez(out_dir / fname, images=chunk_x, labels=chunk_y)
            entries.append({
                "file": fname,
                "num_images": int(len(chunk_y)),
                "digest": _shard_digest(chunk_x, chunk_y),
            })
        splits[split] = {"num_images": int(len(labels)), "shards": entries}

    train_x, train_y = arrays["train"]
    manifest = {
        "format_version": SHARD_FORMAT_VERSION,
        "name": dataset.name,
        "num_classes": int(dataset.num_classes),
        "image_shape": [int(d) for d in train_x.shape[1:]],
        "dtypes": {"images": train_x.dtype.str, "labels": train_y.dtype.str},
        "meta": dict(getattr(dataset, "meta", {}) or {}),
        "splits": splits,
    }
    manifest["digest"] = _manifest_digest(manifest)
    tmp = out_dir / f"{MANIFEST_NAME}.{os.getpid()}.tmp"
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, manifest_path)
    return out_dir


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------

class ShardedDataset:
    """Lazy view over a shard directory, Dataset-compatible where cheap.

    Labels are loaded eagerly (they are tiny and the loader needs them
    every epoch); train images are gathered shard-by-shard on demand
    through transient memmaps; the test split is materialised once on
    first use (evaluation touches all of it every epoch anyway).

    Construct via :func:`open_shards`.
    """

    def __init__(self, root: Path, manifest: Dict):
        self.root = root
        self.name: str = manifest["name"]
        self.num_classes: int = int(manifest["num_classes"])
        self.meta: Dict = manifest.get("meta", {})
        self._manifest = manifest
        self._shape = tuple(int(d) for d in manifest["image_shape"])
        self._image_dtype = np.dtype(manifest["dtypes"]["images"])
        self._label_dtype = np.dtype(manifest["dtypes"]["labels"])
        self._verified: set = set()
        # (split, idx) -> ((dtype, shape, offset) per member), memoised
        # on first open so later gathers mmap directly at the recorded
        # zip offsets instead of re-parsing the archive directory.
        self._layouts: Dict[Tuple[str, int], Tuple] = {}
        # Cumulative start index of each train shard, for index -> shard
        # routing in gather_train.
        counts = [e["num_images"]
                  for e in manifest["splits"]["train"]["shards"]]
        self._train_starts = np.concatenate(
            ([0], np.cumsum(counts))).astype(np.int64)
        self.train_y = self._load_labels("train")
        self._test: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- identity ------------------------------------------------------
    @property
    def image_shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def content_digest(self) -> str:
        """Manifest digest — the dataset's content key for stage caches."""
        return self._manifest["digest"]

    @property
    def manifest(self) -> Dict:
        """The decoded ``shards.json`` (treat as read-only)."""
        return self._manifest

    def verify(self) -> int:
        """Digest-check every shard of every split; returns the count.

        Raises :class:`ShardError` on the first shard whose content no
        longer matches its manifest digest (``repro shards --info`` runs
        this as an integrity audit).
        """
        count = 0
        for split in self._manifest["splits"]:
            for idx in range(len(self._entries(split))):
                self._open_shard(split, idx)
                count += 1
        return count

    @property
    def num_train(self) -> int:
        return int(self._manifest["splits"]["train"]["num_images"])

    @property
    def num_test(self) -> int:
        return int(self._manifest["splits"]["test"]["num_images"])

    def __repr__(self) -> str:
        return (
            f"ShardedDataset({self.name}, classes={self.num_classes}, "
            f"train={self.num_train}, test={self.num_test}, "
            f"shape={self.image_shape}, root={self.root})"
        )

    # -- shard access --------------------------------------------------
    def _entries(self, split: str) -> List[Dict]:
        return self._manifest["splits"][split]["shards"]

    def _open_shard(self, split: str, idx: int
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Memmapped (images, labels) of one shard, digest-checked once.

        The returned arrays are read-only views onto the file; callers
        copy the rows they need and drop the references so the mapping
        is released immediately (keeping the resident set near one
        shard at a time).

        The first open of a shard parses its zip directory, checks the
        geometry against the manifest, and verifies the content digest.
        Every later open replays the memoised member layout straight
        into :class:`numpy.memmap` — a per-batch gather touches each
        shard at the cost of two mmap calls, not a zip parse.
        """
        entry = self._entries(split)[idx]
        path = self.root / entry["file"]
        key = (split, idx)
        layout = self._layouts.get(key)
        if layout is not None:
            try:
                return tuple(
                    np.memmap(path, dtype=dtype, mode="r",
                              offset=offset, shape=shape)
                    for dtype, shape, offset in layout)
            except FileNotFoundError:
                raise ShardError(
                    f"{path} is missing; the shard directory is "
                    f"incomplete — re-run write_shards (repro shards)"
                ) from None
            except (OSError, ValueError) as exc:
                raise ShardError(
                    f"{path} is not a readable shard ({exc}); the file "
                    f"is truncated or corrupt — re-run write_shards"
                ) from None
        try:
            members = mmap_npz_members(path)
        except FileNotFoundError:
            raise ShardError(
                f"{path} is missing; the shard directory is incomplete — "
                f"re-run write_shards (repro shards)") from None
        except (zipfile.BadZipFile, OSError, ValueError) as exc:
            raise ShardError(
                f"{path} is not a readable shard ({exc}); the file is "
                f"truncated or corrupt — re-run write_shards") from None
        try:
            images, labels = members["images"], members["labels"]
        except KeyError as exc:
            raise ShardError(
                f"{path} lacks member {exc.args[0]!r}; not a shard file "
                f"written by write_shards") from None
        if (images.shape[1:] != self._shape
                or images.dtype != self._image_dtype
                or labels.dtype != self._label_dtype
                or len(images) != entry["num_images"]
                or len(labels) != entry["num_images"]):
            raise ShardError(
                f"{path} geometry disagrees with the manifest "
                f"(got images {images.dtype}{images.shape}, labels "
                f"{labels.dtype}{labels.shape}; expected "
                f"{entry['num_images']} images of "
                f"{self._image_dtype}{self._shape}) — the directory "
                f"mixes incompatible writes")
        if key not in self._verified:
            if _shard_digest(images, labels) != entry["digest"]:
                raise ShardError(
                    f"{path} content digest mismatch — the shard was "
                    f"modified after write_shards; regenerate the "
                    f"directory")
            self._verified.add(key)
        self._layouts[key] = tuple(
            (arr.dtype, arr.shape, arr.offset) for arr in (images, labels))
        return images, labels

    def _load_labels(self, split: str) -> np.ndarray:
        n = int(self._manifest["splits"][split]["num_images"])
        out = np.empty(n, dtype=self._label_dtype)
        pos = 0
        for idx in range(len(self._entries(split))):
            _, labels = self._open_shard(split, idx)
            out[pos : pos + len(labels)] = labels
            pos += len(labels)
        if pos != n:
            raise ShardError(
                f"{self.root}: {split} shards hold {pos} labels but the "
                f"manifest promises {n}")
        return out

    def gather_train(self, indices: np.ndarray) -> np.ndarray:
        """Copy the train images at ``indices`` (any order, with repeats).

        Routes each index to its shard, maps every touched shard once,
        gathers its rows, and releases the mapping — the resident cost
        of a gather is one shard plus the output batch.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty((len(indices),) + self._shape, dtype=self._image_dtype)
        shard_of = np.searchsorted(self._train_starts, indices,
                                   side="right") - 1
        for s in np.unique(shard_of):
            sel = np.flatnonzero(shard_of == s)
            images, _ = self._open_shard("train", int(s))
            out[sel] = images[indices[sel] - self._train_starts[s]]
            del images  # drop the memmap before touching the next shard
        return out

    def train_head(self, n: int) -> np.ndarray:
        """First ``n`` train images (calibration batches, previews)."""
        return self.gather_train(np.arange(min(n, self.num_train)))

    # -- test split ----------------------------------------------------
    def _materialise_test(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._test is None:
            n = self.num_test
            images = np.empty((n,) + self._shape, dtype=self._image_dtype)
            all_labels = np.empty(n, dtype=self._label_dtype)
            pos = 0
            for idx in range(len(self._entries("test"))):
                imgs, labels = self._open_shard("test", idx)
                images[pos : pos + len(labels)] = imgs
                all_labels[pos : pos + len(labels)] = labels
                pos += len(labels)
            if pos != n:
                raise ShardError(
                    f"{self.root}: test shards hold {pos} images but the "
                    f"manifest promises {n}")
            self._test = (images, all_labels)
        return self._test

    @property
    def test_x(self) -> np.ndarray:
        return self._materialise_test()[0]

    @property
    def test_y(self) -> np.ndarray:
        return self._materialise_test()[1]


def open_shards(path: PathLike) -> ShardedDataset:
    """Open a shard directory (or its manifest file) for streaming reads.

    Validates the manifest's format version and body digest up front;
    per-shard content digests are checked lazily on each shard's first
    access.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME if path.is_dir() else path
    root = manifest_path.parent
    try:
        manifest = json.loads(manifest_path.read_text())
    except FileNotFoundError:
        raise ShardError(
            f"{manifest_path} not found — not a shard directory (write "
            f"one with write_shards / repro shards)") from None
    except json.JSONDecodeError as exc:
        raise ShardError(
            f"{manifest_path} is not valid JSON ({exc}); the manifest is "
            f"corrupt — re-run write_shards") from None
    version = manifest.get("format_version")
    if version != SHARD_FORMAT_VERSION:
        raise ShardError(
            f"{manifest_path} has shard format version {version!r}; this "
            f"build reads version {SHARD_FORMAT_VERSION} — regenerate the "
            f"directory with write_shards")
    missing = [k for k in ("name", "num_classes", "image_shape", "dtypes",
                           "splits", "digest") if k not in manifest]
    if missing:
        raise ShardError(
            f"{manifest_path} lacks required keys {missing}; not a "
            f"manifest written by write_shards")
    if _manifest_digest(manifest) != manifest["digest"]:
        raise ShardError(
            f"{manifest_path} body digest mismatch — the manifest was "
            f"edited after write_shards; regenerate the directory")
    return ShardedDataset(root, manifest)

"""Mini-batch iteration with optional augmentation."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .transforms import random_crop, random_hflip


class DataLoader:
    """Iterate (images, labels) mini-batches from in-memory arrays.

    Augmentation follows the common CIFAR recipe the paper's VGG training
    would use: pad-and-random-crop plus horizontal flip.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 64,
        shuffle: bool = True,
        augment: bool = False,
        crop_pad: int = 2,
        seed: int = 7,
    ):
        if len(images) != len(labels):
            raise ValueError("images and labels must have equal length")
        self.images = images
        self.labels = labels
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.augment = augment
        self.crop_pad = crop_pad
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return (len(self.labels) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.labels))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            x = self.images[idx]
            y = self.labels[idx]
            if self.augment:
                x = random_crop(x, self.crop_pad, self._rng)
                x = random_hflip(x, self._rng)
            yield x, y

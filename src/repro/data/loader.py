"""Mini-batch iteration with optional augmentation and prefetch.

:class:`StreamingDataLoader` drives the training loop from either an
in-memory array pair or an on-disk :class:`~repro.data.shards.ShardedDataset`
behind one interface.  With ``prefetch > 0`` a background producer
thread stages the next batches (gather + augmentation) into a bounded
queue while the consumer trains on the current one — double buffering,
mirroring the serving fleet's ``MicroBatcher`` queue/thread/shutdown
discipline.

Determinism: every random draw (epoch shuffle, crop offsets, flip
coins) comes from the loader's single generator, in batch order, on the
producer side.  The batch stream is therefore **bitwise identical**
across in-memory vs. sharded sources and synchronous vs. prefetched
iteration for a fixed seed.  (Abandoning an epoch mid-iteration may
leave the generator a few prefetched batches ahead of where a
synchronous loader's would be; full epochs — the training case — always
agree.)

:class:`DataLoader` keeps the historical in-memory constructor
signature; it is the same class with synchronous defaults.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from ..obs import get_registry
from .shards import ShardedDataset
from .transforms import augment_batch

#: End-of-epoch marker on the prefetch queue.
_SENTINEL = object()


class _ProducerError:
    """Wraps an exception raised on the producer thread for re-raise."""

    def __init__(self, exc: BaseException):
        self.exc = exc


class _PrefetchIterator:
    """One epoch's double-buffered batch stream.

    A producer thread computes batches (shard gather + augmentation)
    into a queue bounded at ``prefetch``; ``__next__`` pops them.  The
    producer checks the stop event both before each batch and around
    every blocking put, so :meth:`close` never strands either side: the
    consumer drains the queue to wake a blocked put, the producer
    observes the event and exits, and the join completes.
    """

    def __init__(self, loader: "StreamingDataLoader", order: np.ndarray):
        self._queue: "queue.Queue" = queue.Queue(maxsize=loader.prefetch)
        self._stop = threading.Event()
        self._done = False
        self._thread = threading.Thread(
            target=self._produce, args=(loader, order), daemon=True,
            name="repro-dataloader-prefetch")
        self._thread.start()

    def __iter__(self) -> "_PrefetchIterator":
        return self

    def __next__(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._done:
            raise StopIteration
        registry = get_registry()
        if not registry.enabled:
            item = self._queue.get()
        else:
            # a non-empty queue means the producer is keeping up; the
            # blocked get below is a prefetch stall the consumer eats
            registry.histogram(
                "repro_loader_queue_depth",
                "Prefetched batches staged when the consumer asked",
                buckets=tuple(float(i) for i in range(1, 17))).observe(
                    self._queue.qsize())
            t0 = time.perf_counter()
            item = self._queue.get()
            registry.histogram(
                "repro_loader_stall_seconds",
                "Consumer time blocked waiting on the prefetch "
                "queue").observe(time.perf_counter() - t0)
        if item is _SENTINEL:
            self._finish()
            raise StopIteration
        if isinstance(item, _ProducerError):
            self._finish()
            raise item.exc
        return item

    def _finish(self) -> None:
        self._done = True
        self._thread.join()

    def _produce(self, loader: "StreamingDataLoader",
                 order: np.ndarray) -> None:
        try:
            for start in range(0, len(order), loader.batch_size):
                if self._stop.is_set():
                    return
                item = loader._batch(order[start : start + loader.batch_size])
                if not self._put(item):
                    return
        except BaseException as exc:  # noqa: BLE001 — relay to consumer
            self._put(_ProducerError(exc))
            return
        self._put(_SENTINEL)

    def _put(self, item) -> bool:
        """Bounded put that yields to :meth:`close`; False if stopped."""
        while True:
            if self._stop.is_set():
                return False
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue

    def close(self) -> None:
        """Stop the producer and reclaim the thread (idempotent)."""
        if self._done and not self._thread.is_alive():
            return
        self._stop.set()
        while True:  # unblock a full-queue put so the producer can exit
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join()
        self._done = True


class StreamingDataLoader:
    """Iterate (images, labels) mini-batches from arrays or shards.

    Augmentation follows the common CIFAR recipe the paper's VGG
    training would use: pad-and-random-crop plus horizontal flip.

    Parameters
    ----------
    source:  either an NCHW image array (``labels`` required) or a
             :class:`~repro.data.shards.ShardedDataset`, whose train
             split is streamed shard-by-shard.
    prefetch: batches to stage ahead on a background thread; ``0``
             iterates synchronously on the calling thread.
    """

    def __init__(
        self,
        source: Union[np.ndarray, ShardedDataset],
        labels: Optional[np.ndarray] = None,
        batch_size: int = 64,
        shuffle: bool = True,
        augment: bool = False,
        crop_pad: int = 2,
        seed: int = 7,
        prefetch: int = 2,
    ):
        if isinstance(source, ShardedDataset):
            if labels is not None:
                raise ValueError(
                    "labels come from the shard manifest; pass only the "
                    "ShardedDataset")
            self.images = None
            self.labels = source.train_y
            self._sharded: Optional[ShardedDataset] = source
        else:
            if labels is None:
                raise ValueError("labels are required with array images")
            if len(source) != len(labels):
                raise ValueError("images and labels must have equal length")
            self.images = source
            self.labels = labels
            self._sharded = None
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.augment = augment
        self.crop_pad = crop_pad
        self.prefetch = int(prefetch)
        self._rng = np.random.default_rng(seed)
        self._active: Optional[_PrefetchIterator] = None

    def __len__(self) -> int:
        return (len(self.labels) + self.batch_size - 1) // self.batch_size

    def _batch(self, idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Gather + augment one batch (all RNG draws happen here)."""
        if self._sharded is not None:
            x = self._sharded.gather_train(idx)
        else:
            x = self.images[idx]
        y = self.labels[idx]
        if self.augment:
            x = augment_batch(x, self.crop_pad, self._rng)
        registry = get_registry()
        if registry.enabled:
            source = "shards" if self._sharded is not None else "memory"
            registry.counter(
                "repro_loader_batches_total",
                "Mini-batches produced (gather + augment)").inc(
                    1, source=source)
        return x, y

    def _iter_sync(self, order: np.ndarray
                   ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for start in range(0, len(order), self.batch_size):
            yield self._batch(order[start : start + self.batch_size])

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        # Stop any abandoned previous epoch *before* drawing the shuffle,
        # so its producer cannot race this epoch's generator use.
        self.close()
        order = np.arange(len(self.labels))
        if self.shuffle:
            self._rng.shuffle(order)
        if self.prefetch <= 0:
            return self._iter_sync(order)
        self._active = _PrefetchIterator(self, order)
        return self._active

    def close(self) -> None:
        """Stop the active epoch's prefetch thread, if any (idempotent)."""
        active, self._active = self._active, None
        if active is not None:
            active.close()

    def __enter__(self) -> "StreamingDataLoader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DataLoader(StreamingDataLoader):
    """Historical in-memory loader interface (synchronous by default)."""

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 64,
        shuffle: bool = True,
        augment: bool = False,
        crop_pad: int = 2,
        seed: int = 7,
        prefetch: int = 0,
    ):
        super().__init__(images, labels, batch_size=batch_size,
                         shuffle=shuffle, augment=augment,
                         crop_pad=crop_pad, seed=seed, prefetch=prefetch)


def make_train_loader(dataset, batch_size: int = 64, shuffle: bool = True,
                      augment: bool = False, crop_pad: int = 2,
                      seed: int = 7, prefetch: Optional[int] = None
                      ) -> StreamingDataLoader:
    """Train-split loader for an in-memory or sharded dataset.

    ``prefetch=None`` picks the natural default per source: ``0``
    (synchronous) for in-memory arrays, where gathers are cheap slices,
    and ``2`` (double buffering) for sharded datasets, where the gather
    does real I/O worth overlapping with the optimiser step.
    """
    if isinstance(dataset, ShardedDataset):
        return StreamingDataLoader(
            dataset, batch_size=batch_size, shuffle=shuffle,
            augment=augment, crop_pad=crop_pad, seed=seed,
            prefetch=2 if prefetch is None else prefetch)
    return StreamingDataLoader(
        dataset.train_x, dataset.train_y, batch_size=batch_size,
        shuffle=shuffle, augment=augment, crop_pad=crop_pad, seed=seed,
        prefetch=0 if prefetch is None else prefetch)

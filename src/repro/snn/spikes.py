"""Spike-train containers for one-spike-per-neuron TTFS coding.

With time-to-first-spike coding every neuron fires at most once per
window, so a layer's entire spike train is a dense integer array of
*relative* fire times (``NO_SPIKE`` where the neuron stays silent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..cat.kernels import NO_SPIKE
from ..events import EventStream


@dataclass
class SpikeTrain:
    """Fire times of one layer within its window.

    ``times`` has the layer's activation shape; entries are in
    ``{0..window}`` or ``NO_SPIKE``.
    """

    times: np.ndarray
    window: int

    def __post_init__(self):
        self.times = np.asarray(self.times)
        valid = (self.times == NO_SPIKE) | (
            (self.times >= 0) & (self.times <= self.window)
        )
        if not valid.all():
            bad = self.times[~valid]
            raise ValueError(
                f"spike times outside [0, {self.window}] or NO_SPIKE: {bad[:5]}"
            )

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.times.shape

    @property
    def num_neurons(self) -> int:
        return int(self.times.size)

    @property
    def num_spikes(self) -> int:
        return int((self.times != NO_SPIKE).sum())

    @property
    def sparsity(self) -> float:
        """Fraction of neurons that never fire."""
        return 1.0 - self.num_spikes / max(self.num_neurons, 1)

    def mask_at(self, t: int) -> np.ndarray:
        """Boolean mask of neurons spiking exactly at relative time ``t``."""
        return self.times == t

    def spikes_per_timestep(self) -> np.ndarray:
        """Histogram of spike counts over the window (length window+1)."""
        fired = self.times[self.times != NO_SPIKE]
        return np.bincount(fired.ravel().astype(int), minlength=self.window + 1)

    def decode(self, kernel, theta0: float = 1.0) -> np.ndarray:
        """Values represented by the spikes under ``kernel`` (Eq. 7)."""
        return kernel.decode(self.times, theta0)

    def to_events(self) -> EventStream:
        """Lossless conversion to the sorted event-stream representation."""
        return EventStream.from_dense(self.times, self.window)

    def sorted_events(self) -> Iterator[Tuple[int, int]]:
        """Yield (time, flat_neuron_id) in the min-find merge order that the
        processor's input generator produces (time-major, id-minor).

        Kept as an iterator for compatibility; the sort itself is the
        vectorised :meth:`EventStream.from_dense` lexsort, not a
        per-timestep Python scan.
        """
        yield from self.to_events()

    def reshape(self, shape) -> "SpikeTrain":
        return SpikeTrain(self.times.reshape(shape), self.window)


def encode_values(values: np.ndarray, kernel, window: int,
                  theta0: float = 1.0) -> SpikeTrain:
    """TTFS-encode a value array: first threshold crossing per neuron."""
    times = kernel.spike_time(values, theta0=theta0, window=window)
    return SpikeTrain(times=times, window=window)

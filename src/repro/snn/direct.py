"""Direct SNN training with surrogate gradients (the intro's alternative).

The paper positions ANN-to-SNN conversion against *direct* SNN training
[2]: backpropagation-through-time over the spiking dynamics with a
surrogate derivative for the non-differentiable threshold, which "still
suffers from low accuracies compared to ANN".  This module implements
that baseline so the claim is measurable (``bench_direct_training``):

* IF neurons with reset-by-subtraction, simulated for T timesteps;
* forward spike = Heaviside(u - theta); backward surrogate = the
  fast-sigmoid derivative ``1 / (1 + alpha * |u - theta|)^2`` [2];
* constant-current input coding, spike-count readout.

Built directly on :mod:`repro.tensor`'s autograd — the graph simply
unrolls across timesteps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..data import DataLoader, Dataset
from ..nn.layers import Conv2d, Linear, MaxPool2d
from ..nn.module import Module
from ..nn.sequential import Sequential
from ..optim import SGD
from ..tensor import Tensor, accuracy, cross_entropy, custom_op, max_pool2d


def surrogate_spike(u: Tensor, theta: float, alpha: float = 2.0) -> Tensor:
    """Heaviside forward, fast-sigmoid surrogate backward [2]."""
    fired = (u.data >= theta).astype(u.data.dtype)
    grad = 1.0 / (1.0 + alpha * np.abs(u.data - theta)) ** 2

    def backward(g):
        return (g * grad,)

    return custom_op([u], fired, backward)


class DirectSNN(Module):
    """A small spiking CNN trained directly with BPTT + surrogates.

    Architecture mirrors :func:`repro.nn.vgg_micro`'s topology (conv,
    pool, conv, pool, linear readout) without batch-norm — direct SNN
    training operates on raw membrane dynamics.
    """

    def __init__(self, num_classes: int = 4, in_channels: int = 3,
                 input_size: int = 8, channels: Sequence[int] = (8, 16),
                 timesteps: int = 8, theta: float = 1.0,
                 alpha: float = 2.0):
        super().__init__()
        self.timesteps = timesteps
        self.theta = theta
        self.alpha = alpha
        self.conv1 = Conv2d(in_channels, channels[0], 3, padding=1)
        self.conv2 = Conv2d(channels[0], channels[1], 3, padding=1)
        spatial = input_size // 4
        self.readout = Linear(channels[1] * spatial * spatial, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        """Unroll T timesteps; returns mean readout membrane."""
        theta = self.theta
        u1 = u2 = out_sum = None
        for _ in range(self.timesteps):
            z1 = self.conv1(x)  # constant-current input coding
            u1 = z1 if u1 is None else u1 + z1
            s1 = surrogate_spike(u1, theta, self.alpha)
            u1 = u1 - s1 * theta  # reset by subtraction
            p1 = max_pool2d(s1, 2)

            z2 = self.conv2(p1)
            u2 = z2 if u2 is None else u2 + z2
            s2 = surrogate_spike(u2, theta, self.alpha)
            u2 = u2 - s2 * theta
            p2 = max_pool2d(s2, 2)

            o = self.readout(p2.flatten(1))
            out_sum = o if out_sum is None else out_sum + o
        return out_sum * (1.0 / self.timesteps)


@dataclass
class DirectTrainResult:
    model: DirectSNN
    epoch_losses: List[float] = field(default_factory=list)
    test_accuracies: List[float] = field(default_factory=list)

    @property
    def final_test_acc(self) -> float:
        return self.test_accuracies[-1] if self.test_accuracies else float("nan")


def train_direct(dataset: Dataset, epochs: int = 10, timesteps: int = 8,
                 lr: float = 0.05, batch_size: int = 32,
                 channels: Sequence[int] = (8, 16), seed: int = 0,
                 alpha: float = 2.0) -> DirectTrainResult:
    """Train a DirectSNN on a dataset; returns the model + curves."""
    from ..nn import init as nninit

    nninit.seed(seed)
    size = dataset.image_shape[-1]
    model = DirectSNN(num_classes=dataset.num_classes,
                      in_channels=dataset.image_shape[0],
                      input_size=size, channels=channels,
                      timesteps=timesteps, alpha=alpha)
    opt = SGD(model.parameters(), lr=lr, momentum=0.9, weight_decay=5e-4)
    loader = DataLoader(dataset.train_x, dataset.train_y,
                        batch_size=batch_size, shuffle=True, seed=seed)
    result = DirectTrainResult(model=model)
    for _ in range(epochs):
        losses = []
        for x, y in loader:
            logits = model(Tensor(x))
            loss = cross_entropy(logits, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        result.epoch_losses.append(float(np.mean(losses)))
        preds = model(Tensor(dataset.test_x))
        result.test_accuracies.append(accuracy(preds, dataset.test_y))
    return result

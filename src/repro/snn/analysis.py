"""Spike-train analysis and visualisation utilities.

Text-mode tools for inspecting TTFS dynamics: spike rasters, per-layer
firing statistics, and the pipeline timing diagram of Fig. 1 (layers
occupying consecutive integration/fire windows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..cat.kernels import NO_SPIKE
from .network import SimulationResult
from .spikes import SpikeTrain


@dataclass(frozen=True)
class LayerSpikeStats:
    """Firing statistics of one layer over a window."""

    name: str
    neurons: int
    spikes: int
    firing_rate: float
    mean_spike_time: float
    earliest: int
    latest: int

    def as_row(self) -> list:
        return [self.name, self.neurons, self.spikes,
                round(self.firing_rate, 3),
                round(self.mean_spike_time, 2), self.earliest, self.latest]


def train_stats(train: SpikeTrain, name: str = "layer") -> LayerSpikeStats:
    """Summarise a spike train."""
    fired = train.times[train.times != NO_SPIKE]
    if fired.size:
        mean_t = float(fired.mean())
        earliest = int(fired.min())
        latest = int(fired.max())
    else:
        mean_t, earliest, latest = float("nan"), -1, -1
    return LayerSpikeStats(
        name=name,
        neurons=train.num_neurons,
        spikes=train.num_spikes,
        firing_rate=train.num_spikes / max(train.num_neurons, 1),
        mean_spike_time=mean_t,
        earliest=earliest,
        latest=latest,
    )


def simulation_stats(result: SimulationResult) -> List[LayerSpikeStats]:
    """Per-layer firing statistics from a simulation's traces."""
    stats = []
    for trace in result.traces:
        rate = trace.output_spikes / max(trace.neurons, 1)
        stats.append(LayerSpikeStats(
            name=trace.name, neurons=trace.neurons,
            spikes=trace.output_spikes, firing_rate=rate,
            mean_spike_time=float("nan"), earliest=-1, latest=-1,
        ))
    return stats


def ascii_raster(train: SpikeTrain, max_neurons: int = 32,
                 title: str = "") -> str:
    """Render a spike raster: one row per neuron, '|' at the fire step.

    Only the first ``max_neurons`` (flattened) neurons are drawn.
    """
    flat = train.times.ravel()[:max_neurons]
    width = train.window + 1
    lines = [title] if title else []
    header = "neuron " + "".join(str(t % 10) for t in range(width))
    lines.append(header)
    for i, t in enumerate(flat):
        row = ["."] * width
        if t != NO_SPIKE:
            row[int(t)] = "|"
        lines.append(f"{i:6d} " + "".join(row))
    return "\n".join(lines)


def spike_time_histogram(train: SpikeTrain) -> np.ndarray:
    """Spikes per timestep (delegates to the train, kept for discovery)."""
    return train.spikes_per_timestep()


def pipeline_diagram(num_stages: int, window: int,
                     stage_names: Sequence[str] | None = None,
                     early_firing: bool = False) -> str:
    """Fig. 1-style timing diagram: which window each stage occupies.

    Each stage integrates during its predecessor's fire window and fires
    in the next; with early firing the two overlap and stages advance
    every half window.
    """
    names = list(stage_names) if stage_names else [
        f"stage{i}" for i in range(num_stages)
    ]
    if len(names) != num_stages:
        raise ValueError("stage_names length must equal num_stages")
    step = window // 2 if early_firing else window
    total = step * (num_stages - 1) + window
    scale = max(total // 60, 1)
    lines = [f"time ->  (one char = {scale} timestep"
             f"{'s' if scale > 1 else ''}; window T = {window}"
             f"{', early firing' if early_firing else ''})"]
    for i, name in enumerate(names):
        start = i * step
        bar = " " * (start // scale) + "#" * max(window // scale, 1)
        lines.append(f"{name:>12s} {bar}")
    lines.append(f"{'latency':>12s} {total} timesteps")
    return "\n".join(lines)


def compare_trains(a: SpikeTrain, b: SpikeTrain) -> dict:
    """Spike-level diff between two runs of the same layer."""
    if a.shape != b.shape or a.window != b.window:
        raise ValueError("trains must have identical shape and window")
    both = (a.times != NO_SPIKE) & (b.times != NO_SPIKE)
    only_a = (a.times != NO_SPIKE) & (b.times == NO_SPIKE)
    only_b = (b.times != NO_SPIKE) & (a.times == NO_SPIKE)
    dt = a.times[both] - b.times[both]
    return {
        "matching_neurons": int(both.sum()),
        "only_in_a": int(only_a.sum()),
        "only_in_b": int(only_b.sum()),
        "identical_times": int((dt == 0).sum()),
        "mean_time_shift": float(dt.mean()) if dt.size else 0.0,
        "max_abs_shift": int(np.abs(dt).max()) if dt.size else 0,
    }

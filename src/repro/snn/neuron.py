"""Integrate-and-fire neuron pools with kernel-based dynamic thresholds.

Implements the two phases of a T2FSNN/CAT neuron (paper Sec. 2.2, Fig. 1):

* **integration (decoding) phase** — incoming spikes are decoded through
  the dendrite kernel and accumulated into the membrane potential
  (Eqs. 3, 4, 7);
* **fire (encoding) phase** — the membrane is compared against the
  exponentially decaying threshold ``theta(t) = theta0 * kernel(t)``
  (Eq. 6) and the neuron emits its single spike at the first crossing
  (Eq. 2), then resets so it cannot fire again.

The pool is vectorised over an arbitrary tensor of neurons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..cat.kernels import NO_SPIKE
from ..engine.executor import FIRE_TOL, fire_times_from_membrane
from .spikes import SpikeTrain

_FIRE_TOL = FIRE_TOL  # membranes exactly on-threshold fire (float guard)


@dataclass
class IFNeuronPool:
    """A tensor of IF neurons sharing one threshold kernel."""

    shape: Tuple[int, ...]
    kernel: object  # Base2Kernel or ExpKernel
    theta0: float = 1.0
    membrane: np.ndarray = field(init=False)
    fire_times: np.ndarray = field(init=False)

    def __post_init__(self):
        self.membrane = np.zeros(self.shape, dtype=np.float64)
        self.fire_times = np.full(self.shape, NO_SPIKE, dtype=np.int64)

    # ------------------------------------------------------------------
    # Integration phase
    # ------------------------------------------------------------------
    def integrate(self, psp: np.ndarray) -> None:
        """Accumulate a post-synaptic-potential increment (Eq. 3)."""
        self.membrane += psp

    def add_bias(self, bias: np.ndarray) -> None:
        """Biases integrate once per window (the +b term of Eq. 4)."""
        self.membrane += bias

    # ------------------------------------------------------------------
    # Fire phase
    # ------------------------------------------------------------------
    def fire_step(self, t: int) -> np.ndarray:
        """One timestep of the fire phase; returns the new-spike mask.

        A neuron fires when its membrane reaches the current threshold and
        it has not fired before; fired membranes are reset to zero exactly
        like the Vmem buffer of the hardware spike encoder (Sec. 4.1).
        """
        threshold = self.theta0 * float(self.kernel.value(t))
        fire = (self.membrane >= threshold - _FIRE_TOL) & (self.fire_times == NO_SPIKE)
        self.fire_times[fire] = t
        self.membrane[fire] = 0.0
        return fire

    def run_fire_phase(self, window: int) -> SpikeTrain:
        """Sweep the threshold over the whole window (Eq. 2 + Eq. 6).

        Vectorised through the engine's cumulative formulation: the
        threshold decays monotonically, so the first crossing needs no
        per-timestep Python loop.  Equivalent, spike for spike, to
        calling :meth:`fire_step` for ``t = 0..window``.
        """
        fresh = self.fire_times == NO_SPIKE
        swept = fire_times_from_membrane(self.membrane, self.kernel, window,
                                         self.theta0)
        fired = fresh & (swept != NO_SPIKE)
        self.fire_times[fired] = swept[fired]
        self.membrane[fired] = 0.0
        return SpikeTrain(times=self.fire_times.copy(), window=window)

    def fire_closed_form(self, window: int) -> SpikeTrain:
        """Closed-form spike times (Eq. 8 / Eq. 14): must match the sweep."""
        times = self.kernel.spike_time(
            np.maximum(self.membrane, 0.0), theta0=self.theta0, window=window
        )
        return SpikeTrain(times=times, window=window)

    def reset(self) -> None:
        self.membrane[:] = 0.0
        self.fire_times[:] = NO_SPIKE

"""Event-driven TTFS SNN simulator and the T2FSNN baseline."""

from .spikes import SpikeTrain, encode_values
from .neuron import IFNeuronPool
from .network import EventDrivenTTFSNetwork, LayerTrace, SimulationResult
from .t2fsnn import (
    T2FSNNConfig,
    T2FSNNModel,
    convert_t2fsnn,
    normalize_weights_layerwise,
    optimize_layer_kernel,
)
from .rate import RateCodedNetwork, RateSimulationResult
from .direct import DirectSNN, DirectTrainResult, surrogate_spike, train_direct
from .analysis import (
    LayerSpikeStats,
    ascii_raster,
    compare_trains,
    pipeline_diagram,
    simulation_stats,
    spike_time_histogram,
    train_stats,
)

__all__ = [
    "SpikeTrain",
    "encode_values",
    "IFNeuronPool",
    "EventDrivenTTFSNetwork",
    "LayerTrace",
    "SimulationResult",
    "T2FSNNConfig",
    "T2FSNNModel",
    "convert_t2fsnn",
    "normalize_weights_layerwise",
    "optimize_layer_kernel",
    "DirectSNN",
    "DirectTrainResult",
    "surrogate_spike",
    "train_direct",
    "RateCodedNetwork",
    "RateSimulationResult",
    "LayerSpikeStats",
    "ascii_raster",
    "compare_trains",
    "pipeline_diagram",
    "simulation_stats",
    "spike_time_histogram",
    "train_stats",
]

"""T2FSNN baseline [4]: kernel-based TTFS coding with per-layer kernels.

This is the comparison system of Table 2.  T2FSNN converts a
conventionally trained ANN (ReLU) to an SNN and then reduces the coding
error *post conversion* by tuning each layer's kernel parameters
``(t_d, tau)`` with gradient-based optimisation.  Two consequences the
paper builds on:

* every layer ends up with a *different* kernel, so hardware needs
  reconfigurable (SRAM-based) encode/decode units — the cost Fig. 6's
  baseline pays;
* the "early firing" technique lets a layer start firing while it is
  still integrating, halving end-to-end latency (680 = 17*80/2 in
  Table 2) at a small accuracy cost.

The implementation converts a trained VGG via the same LayerSpec lowering
as CAT, applies data-based layer-wise weight normalisation [5], and
quantises layer activations onto each layer's ExpKernel spike-time grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
from scipy import optimize

from ..cat.convert import ConvertedSNN, LayerSpec, extract_layer_specs
from ..cat.kernels import ExpKernel
from ..cat.schedule import CATConfig
from ..engine.executor import run_value_pipeline
from ..events import EventStream
from ..nn.vgg import VGG


@dataclass(frozen=True)
class T2FSNNConfig:
    """Baseline coding parameters (paper Table 2: T=80, tau=20, base e)."""

    window: int = 80
    tau: float = 20.0
    t_d: float = 0.0
    theta0: float = 1.0
    early_firing: bool = True
    optimize_kernels: bool = True
    optimizer_iters: int = 60


def _quantize_exp(x: np.ndarray, kernel: ExpKernel, window: int,
                  theta0: float) -> np.ndarray:
    """Decode(spike_time(x)): the value the baseline SNN represents."""
    times = kernel.spike_time(x, theta0=theta0, window=window)
    return kernel.decode(times, theta0=theta0).astype(x.dtype, copy=False)


def _coding_error(params: np.ndarray, acts: np.ndarray, window: int,
                  theta0: float) -> float:
    """Mean squared layer coding error as a function of (t_d, log tau).

    This is the objective of the post-conversion optimisation in [4]:
    the error introduced when the layer's activations are encoded to
    spikes and decoded by the next layer.
    """
    t_d, log_tau = params
    kernel = ExpKernel(tau=float(np.exp(log_tau)), t_d=float(t_d))
    q = _quantize_exp(acts, kernel, window, theta0)
    return float(np.mean((q - acts) ** 2))


def optimize_layer_kernel(acts: np.ndarray, window: int, theta0: float,
                          init: ExpKernel, iters: int = 60) -> ExpKernel:
    """Tune (t_d, tau) for one layer by gradient-free descent on the
    coding error (stands in for the gradient-based tuner of [4];
    Nelder-Mead on this 2-D objective converges to the same minima the
    paper describes, without needing the objective to be differentiable
    across the ceil())."""
    sample = acts[acts > 0]
    if sample.size == 0:
        return init
    if sample.size > 20000:
        rng = np.random.default_rng(0)
        sample = rng.choice(sample, size=20000, replace=False)
    res = optimize.minimize(
        _coding_error,
        x0=np.array([init.t_d, np.log(init.tau)]),
        args=(sample, window, theta0),
        method="Nelder-Mead",
        options={"maxiter": iters, "xatol": 1e-3, "fatol": 1e-10},
    )
    t_d, log_tau = res.x
    return ExpKernel(tau=float(np.exp(log_tau)), t_d=float(t_d))


def normalize_weights_layerwise(specs: List[LayerSpec],
                                calibration: np.ndarray,
                                theta0: float = 1.0) -> List[float]:
    """Data-based weight normalisation [5].

    Scales every weight layer by lambda_{l-1} / lambda_l, where lambda_l
    is the max activation of layer l on the calibration batch, so that
    all activations fit the coding range [0, theta0].  Returns the
    per-layer lambdas (for analysis).
    """
    # Pass 1: record each weight layer's max activation on the *original*
    # network (lambda_l, with lambda_0 = input max), via the engine's
    # value-domain walk with a recording ReLU.
    x = np.asarray(calibration, dtype=np.float64)
    input_lambda = max(float(x.max()), 1e-12)
    x = x / input_lambda
    lambdas: List[float] = []
    maxima: List[float] = []

    def _record_relu(_wi: int, z: np.ndarray) -> np.ndarray:
        maxima.append(max(float(z.max()), 1e-12))
        return np.maximum(z, 0.0)

    run_value_pipeline(specs, x, hidden=_record_relu,
                       output=lambda z: _record_relu(-1, z))

    # Pass 2: classic rescaling W_l <- W_l * lambda_{l-1} / lambda_l,
    # b_l <- b_l / lambda_l, which maps every layer's activation to
    # activation / lambda_l, keeping the network function equivalent
    # (positive scaling commutes with ReLU and pooling).
    prev = 1.0  # input already normalised to max 1
    weight_specs = [s for s in specs if s.is_weight_layer]
    for spec, lam in zip(weight_specs, maxima):
        spec.weight *= prev / lam
        spec.bias /= lam
        lambdas.append(lam)
        prev = lam
    return lambdas


@dataclass
class T2FSNNModel:
    """Converted baseline SNN with per-layer kernels."""

    layers: List[LayerSpec]
    config: T2FSNNConfig
    kernels: List[ExpKernel] = field(default_factory=list)
    input_kernel: Optional[ExpKernel] = None

    def __post_init__(self):
        if self.input_kernel is None:
            self.input_kernel = ExpKernel(tau=self.config.tau, t_d=self.config.t_d)
        if not self.kernels:
            self.kernels = [
                ExpKernel(tau=self.config.tau, t_d=self.config.t_d)
                for _ in self.weight_layers
            ]

    @property
    def weight_layers(self) -> List[LayerSpec]:
        return [s for s in self.layers if s.is_weight_layer]

    @property
    def num_pipeline_stages(self) -> int:
        return len(self.weight_layers) + 1

    @property
    def latency_timesteps(self) -> int:
        """Early firing overlaps fire and integration phases, halving the
        effective pipeline occupancy (Table 2: 680 vs 1360 at T=80)."""
        full = self.num_pipeline_stages * self.config.window
        return full // 2 if self.config.early_firing else full

    @property
    def uses_uniform_kernels(self) -> bool:
        """False once the post-conversion optimiser has diversified kernels
        (this is what forces reconfigurable decode hardware, Fig. 6)."""
        ref = self.kernels[0]
        return all(
            abs(k.tau - ref.tau) < 1e-9 and abs(k.t_d - ref.t_d) < 1e-9
            for k in self.kernels
        )

    # ------------------------------------------------------------------
    def forward_value(self, x: np.ndarray) -> np.ndarray:
        """Value-domain evaluation with per-layer kernel quantisation."""
        cfg = self.config
        x = np.asarray(x, dtype=np.float64)
        x = x / max(float(x.max()), 1e-12)
        x = _quantize_exp(x, self.input_kernel, cfg.window, cfg.theta0)
        return run_value_pipeline(
            self.layers, x,
            hidden=lambda wi, z: _quantize_exp(
                np.maximum(z, 0.0), self.kernels[wi], cfg.window, cfg.theta0))

    def accuracy(self, images: np.ndarray, labels: np.ndarray,
                 batch_size: int = 256) -> float:
        correct = 0
        for start in range(0, len(labels), batch_size):
            out = self.forward_value(images[start : start + batch_size])
            correct += int(
                (out.argmax(axis=1) == labels[start : start + batch_size]).sum()
            )
        return correct / len(labels)

    # ------------------------------------------------------------------
    def layer_event_streams(self, x: np.ndarray) -> List[EventStream]:
        """Per-layer spike events under each layer's (tuned) kernel.

        The baseline's spike activity as sorted :class:`EventStream`\\ s —
        the input encoding plus one stream per hidden weight layer —
        which is what the Table 2 spike-count/sparsity comparison
        against the paper's coding consumes (no private dense trains).
        """
        cfg = self.config
        x = np.asarray(x, dtype=np.float64)
        x = x / max(float(x.max()), 1e-12)
        streams: List[EventStream] = [EventStream.from_dense(
            self.input_kernel.spike_time(x, theta0=cfg.theta0,
                                         window=cfg.window), cfg.window)]

        def _encode_and_tap(wi: int, z: np.ndarray) -> np.ndarray:
            acts = np.maximum(z, 0.0)
            kernel = self.kernels[wi]
            times = kernel.spike_time(acts, theta0=cfg.theta0,
                                      window=cfg.window)
            streams.append(EventStream.from_dense(times, cfg.window))
            return kernel.decode(times, theta0=cfg.theta0)

        run_value_pipeline(self.layers,
                           streams[0].decode(self.input_kernel, cfg.theta0),
                           hidden=_encode_and_tap)
        return streams

    def total_spikes(self, x: np.ndarray) -> int:
        """Whole-network spike count on a batch (baseline sparsity)."""
        return sum(s.num_spikes for s in self.layer_event_streams(x))


def convert_t2fsnn(model: VGG, config: T2FSNNConfig,
                   calibration: np.ndarray) -> T2FSNNModel:
    """Full baseline conversion: lower, weight-normalise, tune kernels."""
    model.eval()
    specs = extract_layer_specs(model)
    normalize_weights_layerwise(specs, calibration, config.theta0)
    snn = T2FSNNModel(layers=specs, config=config)
    if config.optimize_kernels:
        _tune_kernels(snn, calibration)
    return snn


def _tune_kernels(snn: T2FSNNModel, calibration: np.ndarray) -> None:
    """Per-layer post-conversion optimisation pass ([4], Sec. 3.1)."""
    cfg = snn.config
    x = np.asarray(calibration, dtype=np.float64)
    x = x / max(float(x.max()), 1e-12)
    x = _quantize_exp(x, snn.input_kernel, cfg.window, cfg.theta0)

    def _tune_then_quantize(wi: int, z: np.ndarray) -> np.ndarray:
        acts = np.maximum(z, 0.0)
        snn.kernels[wi] = optimize_layer_kernel(
            acts, cfg.window, cfg.theta0, snn.kernels[wi],
            iters=cfg.optimizer_iters,
        )
        return _quantize_exp(acts, snn.kernels[wi], cfg.window, cfg.theta0)

    run_value_pipeline(snn.layers, x, hidden=_tune_then_quantize)

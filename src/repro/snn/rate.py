"""Rate-coded SNN execution — the comparison TTFS coding is built against.

The paper's efficiency argument (Sec. 1-2) rests on TTFS emitting *at
most one spike per neuron* where classic rate-coded conversions [5] need
spike counts proportional to activation x window.  This module runs the
same converted network under rate coding so the spike-count and
accuracy-vs-latency trade-offs can be measured side by side
(``bench_rate_vs_ttfs``).

Semantics (standard IF rate conversion, reset-by-subtraction [5]):

* the input feature map is presented as a constant current every
  timestep (equivalently, Poisson spikes in expectation);
* each IF neuron integrates ``W x + b`` per step and emits a spike
  whenever its membrane crosses ``theta0``, subtracting the threshold;
* a neuron's spike *count* over T steps approximates its ReLU activation
  scaled by T; the readout layer accumulates membrane without firing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..cat.convert import ConvertedSNN, LayerSpec
from ..tensor import Tensor, avg_pool2d, conv2d as conv2d_op, max_pool2d


@dataclass
class RateSimulationResult:
    """Spike statistics and readout of a rate-coded run."""

    output: np.ndarray
    timesteps: int
    spikes_per_layer: List[int] = field(default_factory=list)
    neurons_per_layer: List[int] = field(default_factory=list)

    @property
    def total_spikes(self) -> int:
        return sum(self.spikes_per_layer)

    @property
    def mean_spikes_per_neuron(self) -> float:
        neurons = sum(self.neurons_per_layer)
        return self.total_spikes / max(neurons, 1)

    def predictions(self) -> np.ndarray:
        return self.output.argmax(axis=1)


class RateCodedNetwork:
    """Run a :class:`ConvertedSNN`'s layers under rate coding.

    Reuses the converted (BN-fused) weights; the TTFS coding config is
    ignored except for ``theta0``.  ``timesteps`` plays the role TTFS's
    window plays: more steps = finer rate resolution = higher accuracy,
    but spike counts scale with it.
    """

    def __init__(self, snn: ConvertedSNN, timesteps: int = 32):
        if timesteps < 1:
            raise ValueError("need at least one timestep")
        self.snn = snn
        self.timesteps = timesteps
        self.theta0 = snn.config.theta0

    # ------------------------------------------------------------------
    def _affine(self, spec: LayerSpec, x: np.ndarray) -> np.ndarray:
        if spec.kind == "conv":
            return conv2d_op(Tensor(x), Tensor(spec.weight),
                             Tensor(spec.bias), spec.stride,
                             spec.padding).data.astype(np.float64)
        return (x @ spec.weight.T + spec.bias).astype(np.float64)

    def run(self, images: np.ndarray) -> RateSimulationResult:
        """Simulate T timesteps of the whole network."""
        theta = self.theta0
        steps = self.timesteps
        x = np.asarray(images, dtype=np.float64)

        # Per-layer persistent state: membrane potential.
        membranes: List[Optional[np.ndarray]] = [None] * len(self.snn.layers)
        spike_counts = [0] * len(self.snn.layers)
        neuron_counts = [0] * len(self.snn.layers)
        readout = None

        for _ in range(steps):
            signal = x  # input current each step (rate ~ pixel value)
            for li, spec in enumerate(self.snn.layers):
                if spec.is_weight_layer:
                    z = self._affine(spec, signal)
                    if membranes[li] is None:
                        membranes[li] = np.zeros_like(z)
                    membranes[li] += z
                    if spec.is_output:
                        readout = membranes[li]
                        signal = None
                        break
                    fire = membranes[li] >= theta
                    membranes[li] -= theta * fire  # reset by subtraction
                    spike_counts[li] += int(fire.sum())
                    neuron_counts[li] = fire.size
                    signal = fire.astype(np.float64) * theta
                elif spec.kind == "maxpool":
                    signal = max_pool2d(Tensor(signal), spec.kernel_size,
                                        spec.stride).data
                elif spec.kind == "avgpool":
                    signal = avg_pool2d(Tensor(signal), spec.kernel_size,
                                        spec.stride).data
                elif spec.kind == "flatten":
                    signal = signal.reshape(len(signal), -1)

        output = (readout / steps) * self.snn.output_scale
        kept = [i for i, spec in enumerate(self.snn.layers)
                if spec.is_weight_layer and not spec.is_output]
        return RateSimulationResult(
            output=output,
            timesteps=steps,
            spikes_per_layer=[spike_counts[i] for i in kept],
            neurons_per_layer=[neuron_counts[i] for i in kept],
        )

    def accuracy(self, images: np.ndarray, labels: np.ndarray,
                 batch_size: int = 64) -> float:
        correct = 0
        for start in range(0, len(labels), batch_size):
            res = self.run(images[start : start + batch_size])
            correct += int(
                (res.predictions() == labels[start : start + batch_size]).sum()
            )
        return correct / len(labels)

"""Rate-coded SNN execution — the comparison TTFS coding is built against.

The paper's efficiency argument (Sec. 1-2) rests on TTFS emitting *at
most one spike per neuron* where classic rate-coded conversions [5] need
spike counts proportional to activation x window.  This module runs the
same converted network under rate coding so the spike-count and
accuracy-vs-latency trade-offs can be measured side by side
(``bench_rate_vs_ttfs``).

Semantics (standard IF rate conversion, reset-by-subtraction [5]):

* the input feature map is presented as a constant current every
  timestep (equivalently, Poisson spikes in expectation);
* each IF neuron integrates ``W x + b`` per step and emits a spike
  whenever its membrane crosses ``theta0``, subtracting the threshold;
* a neuron's spike *count* over T steps approximates its ReLU activation
  scaled by T; the readout layer accumulates membrane without firing.

Execution routes through the shared :mod:`repro.engine` walk.  The state
carried between layers is the whole per-timestep signal (time axis
leading), so each layer's affine map runs *once* over all T steps folded
into the batch dimension — the timestep-by-timestep threshold dynamics,
which are genuinely sequential, are the only remaining per-step loop.
The layer-by-layer ordering is equivalent to the step-by-step one
because a step's signal flows through the whole network within that
step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..cat.convert import ConvertedSNN, LayerSpec
from ..engine import executor
from ..engine.executor import (
    CodingScheme,
    ExecutionContext,
    LayerTrace,
    validate_backend,
)
from ..engine.plan import PlanSet, choose_backend
from ..engine.registry import register_scheme
from ..engine.runner import PipelineRunner
from ..events import EventStream


@dataclass
class RateSimulationResult:
    """Spike statistics and readout of a rate-coded run."""

    output: np.ndarray
    timesteps: int
    spikes_per_layer: List[int] = field(default_factory=list)
    neurons_per_layer: List[int] = field(default_factory=list)

    @property
    def total_spikes(self) -> int:
        return sum(self.spikes_per_layer)

    @property
    def mean_spikes_per_neuron(self) -> float:
        neurons = sum(self.neurons_per_layer)
        return self.total_spikes / max(neurons, 1)

    def predictions(self) -> np.ndarray:
        return self.output.argmax(axis=1)


@dataclass
class _RateSignal:
    """Inter-layer state: the layer input signal for every timestep.

    ``per_step`` is False while the signal is identical at every step
    (true until the first firing layer — the input current is constant),
    letting the affine map and pooling run once instead of T times.
    When True, ``data`` has the time axis leading: ``(T, N, ...)``.
    """

    data: np.ndarray
    per_step: bool = False


class RateCodedNetwork(CodingScheme):
    """Run a :class:`ConvertedSNN`'s layers under rate coding.

    Reuses the converted (BN-fused) weights; the TTFS coding config is
    ignored except for ``theta0``.  ``timesteps`` plays the role TTFS's
    window plays: more steps = finer rate resolution = higher accuracy,
    but spike counts scale with it.
    """

    scheme_name = "rate"

    def __init__(self, snn: ConvertedSNN, timesteps: int = 32,
                 backend: str = "dense", plans: Optional[PlanSet] = None):
        if timesteps < 1:
            raise ValueError("need at least one timestep")
        self.snn = snn
        self.timesteps = timesteps
        self.theta0 = snn.config.theta0
        self.backend = validate_backend(backend)
        self.plans = plans if plans is not None else PlanSet()

    # ------------------------------------------------------------------
    @staticmethod
    def _map_steps(op, data: np.ndarray) -> np.ndarray:
        """Apply a batch op to per-step data by folding T into the batch."""
        t, n = data.shape[:2]
        out = op(data.reshape((t * n,) + data.shape[2:]))
        return out.reshape((t, n) + out.shape[1:])

    def _fold(self, spec: LayerSpec, signal: _RateSignal,
              ctx: ExecutionContext, layer_backend: str) -> np.ndarray:
        """Per-step pre-activations ``z`` with the time axis leading."""
        if not signal.per_step:
            z = executor.affine(spec, signal.data)
            return np.broadcast_to(z, (self.timesteps,) + z.shape)
        if layer_backend == "event":
            return self._fold_events(spec, signal, ctx)
        return self._map_steps(lambda x: executor.affine(spec, x),
                               signal.data)

    def _fold_events(self, spec: LayerSpec, signal: _RateSignal,
                     ctx: ExecutionContext) -> np.ndarray:
        """Event-backend fold: scatter only the spikes that occurred.

        A per-step firing signal holds ``theta0`` at spiking neurons and
        zero everywhere else, so the dense per-step affine map reduces
        to one batched scatter over the spike events — the time axis
        folds into the batch exactly as in :meth:`_map_steps`, but the
        cost scales with the spike count, not ``T x neurons``.
        """
        data = signal.data
        stream = EventStream.from_masks(data != 0).fold_time()
        plan = self.plans.plan_for(spec, ctx.weight_index, stream.shape)
        z = executor.integrate_events(spec, stream,
                                      data.reshape(-1)[stream.indices],
                                      plan)
        z += executor.bias_shaped(spec)
        return z.reshape(data.shape[:2] + z.shape[1:])

    def _resolve_backend(self, spec: LayerSpec,
                         signal: _RateSignal) -> str:
        """The fold path this layer runs under the scheme backend.

        A not-yet-per-step signal always folds as one broadcast affine
        map (there is nothing event-shaped to scatter); otherwise
        ``auto`` prices the spike scatter against the T-folded dense
        affine over the actual nonzero count.
        """
        if not signal.per_step:
            return "dense"
        if self.backend != "auto":
            return self.backend
        data = signal.data
        num_events = int(np.count_nonzero(data))
        in_shape = (data.shape[0] * data.shape[1],) + data.shape[2:]
        return choose_backend(spec, num_events, in_shape, dense_steps=1)

    # ------------------------------------------------------------------
    # CodingScheme hooks
    # ------------------------------------------------------------------
    def encode_input(self, images: np.ndarray,
                     ctx: ExecutionContext) -> _RateSignal:
        # constant input current each step (rate ~ pixel value)
        return _RateSignal(np.asarray(images, dtype=np.float64),
                           per_step=False)

    def weight_layer(self, spec: LayerSpec, signal: _RateSignal,
                     ctx: ExecutionContext):
        theta = self.theta0
        layer_backend = self._resolve_backend(spec, signal)
        z = self._fold(spec, signal, ctx, layer_backend)
        if spec.is_output:
            # readout accumulates membrane without firing
            return z.sum(axis=0)

        membrane = np.zeros(z.shape[1:], dtype=np.float64)
        fires = np.empty(z.shape, dtype=np.float64)
        spikes = 0
        for t in range(self.timesteps):
            membrane += z[t]
            fire = membrane >= theta
            membrane -= theta * fire  # reset by subtraction
            spikes += int(fire.sum())
            fires[t] = fire
        ctx.record(LayerTrace(
            name=f"{spec.kind}{ctx.weight_index}", input_spikes=0,
            output_spikes=spikes, neurons=int(membrane.size), sops=0,
            backend=layer_backend))
        return _RateSignal(fires * theta, per_step=True)

    def pool(self, spec: LayerSpec, signal: _RateSignal,
             ctx: ExecutionContext) -> _RateSignal:
        if not signal.per_step:
            return _RateSignal(executor.pool_values(spec, signal.data),
                               per_step=False)
        pooled = self._map_steps(lambda x: executor.pool_values(spec, x),
                                 signal.data)
        return _RateSignal(pooled, per_step=True)

    def flatten(self, signal: _RateSignal,
                ctx: ExecutionContext) -> _RateSignal:
        lead = 2 if signal.per_step else 1
        shape = signal.data.shape[:lead] + (-1,)
        return _RateSignal(signal.data.reshape(shape), signal.per_step)

    def finalize(self, readout: np.ndarray,
                 ctx: ExecutionContext) -> RateSimulationResult:
        output = (readout / self.timesteps) * self.snn.output_scale
        return RateSimulationResult(
            output=output,
            timesteps=self.timesteps,
            spikes_per_layer=[t.output_spikes for t in ctx.traces],
            neurons_per_layer=[t.neurons for t in ctx.traces],
        )

    def merge(self, results: List[RateSimulationResult]
              ) -> RateSimulationResult:
        return RateSimulationResult(
            output=np.concatenate([r.output for r in results], axis=0),
            timesteps=results[0].timesteps,
            spikes_per_layer=[sum(col) for col in
                              zip(*(r.spikes_per_layer for r in results))],
            neurons_per_layer=[sum(col) for col in
                               zip(*(r.neurons_per_layer for r in results))],
        )

    # ------------------------------------------------------------------
    def run(self, images: np.ndarray) -> RateSimulationResult:
        """Simulate T timesteps of the whole network."""
        return executor.run_pipeline(self, images)

    def accuracy(self, images: np.ndarray, labels: np.ndarray,
                 batch_size: int = 64) -> float:
        return PipelineRunner(self, max_batch=batch_size).accuracy(
            images, labels)


@register_scheme("rate")
def _make_rate(snn: ConvertedSNN, **options) -> RateCodedNetwork:
    return RateCodedNetwork(snn, **options)

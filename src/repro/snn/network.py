"""Event-driven simulation of a converted TTFS spiking network.

The network consumes the :class:`~repro.cat.convert.LayerSpec` list that
:func:`repro.cat.convert.convert` produces and simulates the pipeline of
Fig. 1: every layer integrates its predecessor's spikes through the
dendrite kernel timestep by timestep, then encodes its own membrane
potentials into output spikes with the threshold sweep.

The layer walk itself lives in :mod:`repro.engine`;
:class:`EventDrivenTTFSNetwork` is the TTFS coding *strategy* over that
walk.  Two execution paths exist and are asserted equal by the
test-suite:

* ``timestep`` — faithful: loop over the window, decode the spikes of
  each timestep, push their PSPs through the layer's synapses, then run
  the fire-phase threshold sweep (this is what the hardware does);
* ``closed_form`` — fast: decode the whole spike train at once (the
  affine map is linear, so integration order is irrelevant) and use the
  closed-form spike time (Eq. 14).

The simulation also records the statistics the hardware model consumes:
spike counts, synaptic operations (SOPs) and per-layer occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal

import numpy as np

from ..cat.convert import ConvertedSNN, LayerSpec
from ..cat.kernels import Base2Kernel
from ..engine import executor
from ..engine.executor import ExecutionContext, LayerTrace, SpikeTrainScheme
from ..engine.registry import register_scheme
from ..engine.runner import PipelineRunner, merge_traces
from .neuron import IFNeuronPool
from .spikes import SpikeTrain, encode_values


@dataclass
class SimulationResult:
    """Output of an event-driven run."""

    output: np.ndarray  # readout membrane potentials
    traces: List[LayerTrace] = field(default_factory=list)
    window: int = 0
    num_stages: int = 0
    early_firing: bool = False

    @property
    def latency_timesteps(self) -> int:
        """End-to-end latency: one window per pipeline stage; early
        firing overlaps integrate/fire phases and halves it (Table 2)."""
        total = self.num_stages * self.window
        return total // 2 if self.early_firing else total

    @property
    def total_spikes(self) -> int:
        return sum(t.output_spikes for t in self.traces)

    @property
    def total_sops(self) -> int:
        return sum(t.sops for t in self.traces)

    def predictions(self) -> np.ndarray:
        return self.output.argmax(axis=1)


class EventDrivenTTFSNetwork(SpikeTrainScheme):
    """Simulate a :class:`ConvertedSNN` spike-by-spike.

    ``early_firing`` enables the T2FSNN latency optimisation [4]: a
    neuron may fire *during* its integration window based on its partial
    membrane sum, halving end-to-end latency.  The paper's design keeps
    the phases separate (exactness over latency); this flag exists so the
    trade-off can be measured (see ``bench_early_firing``).
    """

    def __init__(self, snn: ConvertedSNN,
                 mode: Literal["timestep", "closed_form"] = "closed_form",
                 record_membranes: bool = False,
                 early_firing: bool = False):
        self.snn = snn
        self.config = snn.config
        self.kernel = Base2Kernel(tau=snn.config.tau, base=snn.config.base)
        self.mode = mode
        self.record_membranes = record_membranes
        self.early_firing = early_firing
        self.scheme_name = ("ttfs-early" if early_firing
                           else f"ttfs-{mode.replace('_', '-')}")

    # ------------------------------------------------------------------
    def _integrate(self, spec: LayerSpec, train: SpikeTrain,
                   pool: IFNeuronPool) -> None:
        """Integration phase: accumulate PSPs into the pool's membranes."""
        theta0 = self.config.theta0
        if self.mode == "timestep":
            for t in range(train.window + 1):
                mask = train.mask_at(t)
                if not mask.any():
                    continue
                decoded_step = mask * float(self.kernel.value(t)) * theta0
                pool.integrate(executor.affine(spec, decoded_step,
                                               include_bias=False))
        else:
            decoded = train.decode(self.kernel, theta0)
            pool.integrate(executor.affine(spec, decoded, include_bias=False))
        pool.add_bias(executor.bias_shaped(spec))

    def _integrate_and_fire_early(self, spec: LayerSpec, train: SpikeTrain,
                                  pool: IFNeuronPool) -> SpikeTrain:
        """Overlapped integration + fire (T2FSNN 'early firing').

        At every timestep the layer first integrates the spikes arriving
        at that step, then compares the *partial* membrane against the
        decaying threshold.  Neurons therefore fire on incomplete sums:
        latency halves, at the cost of coding error when later inputs
        would have changed the membrane.
        """
        theta0 = self.config.theta0
        window = train.window
        pool.add_bias(executor.bias_shaped(spec))
        for t in range(window + 1):
            mask = train.mask_at(t)
            if mask.any():
                decoded_step = mask * float(self.kernel.value(t)) * theta0
                pool.integrate(executor.affine(spec, decoded_step,
                                               include_bias=False))
            pool.fire_step(t)
        return SpikeTrain(times=pool.fire_times.copy(), window=window)

    # ------------------------------------------------------------------
    @staticmethod
    def _pool_times(spec: LayerSpec, train: SpikeTrain) -> SpikeTrain:
        """Earliest-spike max pooling (kept as an alias of the engine's)."""
        return executor.pool_times(spec, train)

    # ------------------------------------------------------------------
    # CodingScheme hooks
    # ------------------------------------------------------------------
    def encode_input(self, images: np.ndarray,
                     ctx: ExecutionContext) -> SpikeTrain:
        cfg = self.config
        train = encode_values(np.asarray(images, dtype=np.float64),
                              self.kernel, cfg.window, cfg.theta0)
        ctx.record(LayerTrace(name="input-encoder", input_spikes=0,
                              output_spikes=train.num_spikes,
                              neurons=train.num_neurons, sops=0))
        return train

    def weight_layer(self, spec: LayerSpec, train: SpikeTrain,
                     ctx: ExecutionContext):
        cfg = self.config
        out_shape = executor.output_shape(spec, train.shape)
        pool = IFNeuronPool(shape=out_shape, kernel=self.kernel,
                            theta0=cfg.theta0)
        in_spikes = train.num_spikes
        sops = executor.layer_sops(spec, in_spikes)
        name = f"{spec.kind}{ctx.weight_index}"

        if spec.is_output:
            self._integrate(spec, train, pool)
            output = pool.membrane * self.snn.output_scale
            ctx.record(LayerTrace(
                name=name + "(out)", input_spikes=in_spikes, output_spikes=0,
                neurons=int(np.prod(out_shape)), sops=sops,
                membrane=output if self.record_membranes else None))
            return output

        if self.early_firing:
            out_train = self._integrate_and_fire_early(spec, train, pool)
        else:
            self._integrate(spec, train, pool)
            if self.mode == "timestep":
                out_train = pool.run_fire_phase(cfg.window)
            else:
                out_train = pool.fire_closed_form(cfg.window)
        ctx.record(LayerTrace(
            name=name, input_spikes=in_spikes,
            output_spikes=out_train.num_spikes,
            neurons=int(np.prod(out_shape)), sops=sops,
            membrane=pool.membrane.copy() if self.record_membranes else None))
        return out_train

    def finalize(self, output: np.ndarray,
                 ctx: ExecutionContext) -> SimulationResult:
        return SimulationResult(output=output, traces=ctx.traces,
                                window=self.config.window,
                                num_stages=self.snn.num_pipeline_stages,
                                early_firing=self.early_firing)

    def merge(self, results: List[SimulationResult]) -> SimulationResult:
        return SimulationResult(
            output=np.concatenate([r.output for r in results], axis=0),
            traces=merge_traces([r.traces for r in results]),
            window=results[0].window, num_stages=results[0].num_stages,
            early_firing=results[0].early_firing)

    # ------------------------------------------------------------------
    def run(self, images: np.ndarray) -> SimulationResult:
        """Simulate the full pipeline on a batch of images."""
        return executor.run_pipeline(self, images)

    def accuracy(self, images: np.ndarray, labels: np.ndarray,
                 batch_size: int = 64) -> float:
        return PipelineRunner(self, max_batch=batch_size).accuracy(
            images, labels)


@register_scheme("ttfs-closed-form")
def _make_closed_form(snn: ConvertedSNN, **options) -> EventDrivenTTFSNetwork:
    return EventDrivenTTFSNetwork(snn, mode="closed_form", **options)


@register_scheme("ttfs-timestep")
def _make_timestep(snn: ConvertedSNN, **options) -> EventDrivenTTFSNetwork:
    return EventDrivenTTFSNetwork(snn, mode="timestep", **options)


@register_scheme("ttfs-early")
def _make_early(snn: ConvertedSNN, **options) -> EventDrivenTTFSNetwork:
    return EventDrivenTTFSNetwork(snn, early_firing=True, **options)

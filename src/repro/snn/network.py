"""Event-driven simulation of a converted TTFS spiking network.

The network consumes the :class:`~repro.cat.convert.LayerSpec` list that
:func:`repro.cat.convert.convert` produces and simulates the pipeline of
Fig. 1: every layer integrates its predecessor's spikes through the
dendrite kernel timestep by timestep, then encodes its own membrane
potentials into output spikes with the threshold sweep.

Two execution paths exist and are asserted equal by the test-suite:

* ``timestep`` — faithful: loop over the window, decode the spikes of
  each timestep, push their PSPs through the layer's synapses, then run
  the fire-phase threshold sweep (this is what the hardware does);
* ``closed_form`` — fast: decode the whole spike train at once (the
  affine map is linear, so integration order is irrelevant) and use the
  closed-form spike time (Eq. 14).

The simulation also records the statistics the hardware model consumes:
spike counts, synaptic operations (SOPs) and per-layer occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional

import numpy as np

from ..cat.convert import ConvertedSNN, LayerSpec
from ..cat.kernels import NO_SPIKE, Base2Kernel
from ..tensor import Tensor, conv2d as conv2d_op
from .neuron import IFNeuronPool
from .spikes import SpikeTrain, encode_values


@dataclass
class LayerTrace:
    """Per-layer record of one simulation run."""

    name: str
    input_spikes: int
    output_spikes: int
    neurons: int
    sops: int  # synaptic operations = sum over input spikes of fan-out
    membrane: Optional[np.ndarray] = None


@dataclass
class SimulationResult:
    """Output of an event-driven run."""

    output: np.ndarray  # readout membrane potentials
    traces: List[LayerTrace] = field(default_factory=list)
    window: int = 0
    num_stages: int = 0
    early_firing: bool = False

    @property
    def latency_timesteps(self) -> int:
        """End-to-end latency: one window per pipeline stage; early
        firing overlaps integrate/fire phases and halves it (Table 2)."""
        total = self.num_stages * self.window
        return total // 2 if self.early_firing else total

    @property
    def total_spikes(self) -> int:
        return sum(t.output_spikes for t in self.traces)

    @property
    def total_sops(self) -> int:
        return sum(t.sops for t in self.traces)

    def predictions(self) -> np.ndarray:
        return self.output.argmax(axis=1)


def _conv_fanout(spec: LayerSpec, out_spatial: int) -> int:
    """Average fan-out of one input spike in a conv layer.

    Each input event updates at most K*K*C_out membranes (SpinalFlow's
    dataflow); borders reduce the average slightly, which we fold in via
    the ratio of valid positions.
    """
    k = spec.kernel_size
    c_out = spec.weight.shape[0]
    return k * k * c_out


class EventDrivenTTFSNetwork:
    """Simulate a :class:`ConvertedSNN` spike-by-spike.

    ``early_firing`` enables the T2FSNN latency optimisation [4]: a
    neuron may fire *during* its integration window based on its partial
    membrane sum, halving end-to-end latency.  The paper's design keeps
    the phases separate (exactness over latency); this flag exists so the
    trade-off can be measured (see ``bench_early_firing``).
    """

    def __init__(self, snn: ConvertedSNN,
                 mode: Literal["timestep", "closed_form"] = "closed_form",
                 record_membranes: bool = False,
                 early_firing: bool = False):
        self.snn = snn
        self.config = snn.config
        self.kernel = Base2Kernel(tau=snn.config.tau, base=snn.config.base)
        self.mode = mode
        self.record_membranes = record_membranes
        self.early_firing = early_firing

    # ------------------------------------------------------------------
    def _affine_no_bias(self, spec: LayerSpec, x: np.ndarray) -> np.ndarray:
        if spec.kind == "conv":
            return conv2d_op(Tensor(x), Tensor(spec.weight), None,
                             spec.stride, spec.padding).data.astype(np.float64)
        return (x @ spec.weight.T).astype(np.float64)

    def _integrate(self, spec: LayerSpec, train: SpikeTrain,
                   pool: IFNeuronPool) -> None:
        """Integration phase: accumulate PSPs into the pool's membranes."""
        theta0 = self.config.theta0
        if self.mode == "timestep":
            for t in range(train.window + 1):
                mask = train.mask_at(t)
                if not mask.any():
                    continue
                decoded_step = mask * float(self.kernel.value(t)) * theta0
                pool.integrate(self._affine_no_bias(spec, decoded_step))
        else:
            decoded = train.decode(self.kernel, theta0)
            pool.integrate(self._affine_no_bias(spec, decoded))
        pool.add_bias(self._bias_shaped(spec, pool.shape))

    def _integrate_and_fire_early(self, spec: LayerSpec, train: SpikeTrain,
                                  pool: IFNeuronPool) -> SpikeTrain:
        """Overlapped integration + fire (T2FSNN 'early firing').

        At every timestep the layer first integrates the spikes arriving
        at that step, then compares the *partial* membrane against the
        decaying threshold.  Neurons therefore fire on incomplete sums:
        latency halves, at the cost of coding error when later inputs
        would have changed the membrane.
        """
        theta0 = self.config.theta0
        window = train.window
        pool.add_bias(self._bias_shaped(spec, pool.shape))
        for t in range(window + 1):
            mask = train.mask_at(t)
            if mask.any():
                decoded_step = mask * float(self.kernel.value(t)) * theta0
                pool.integrate(self._affine_no_bias(spec, decoded_step))
            pool.fire_step(t)
        return SpikeTrain(times=pool.fire_times.copy(), window=window)

    @staticmethod
    def _bias_shaped(spec: LayerSpec, shape) -> np.ndarray:
        if spec.kind == "conv":
            return spec.bias[None, :, None, None]
        return spec.bias[None, :]

    def _output_shape(self, spec: LayerSpec, in_shape) -> tuple:
        if spec.kind == "conv":
            n, _, h, w = in_shape
            k, s, p = spec.kernel_size, spec.stride, spec.padding
            oh = (h + 2 * p - k) // s + 1
            ow = (w + 2 * p - k) // s + 1
            return (n, spec.weight.shape[0], oh, ow)
        return (in_shape[0], spec.weight.shape[0])

    # ------------------------------------------------------------------
    @staticmethod
    def _pool_times(spec: LayerSpec, train: SpikeTrain) -> SpikeTrain:
        """Max-pool in the time domain: the earliest spike wins.

        Under TTFS coding the maximum value corresponds to the minimum
        spike time, so spatial max-pooling is a windowed min over fire
        times (NO_SPIKE treated as +inf).
        """
        times = train.times
        n, c, h, w = times.shape
        k, s = spec.kernel_size, spec.stride
        oh = (h - k) // s + 1
        ow = (w - k) // s + 1
        big = np.where(times == NO_SPIKE, np.iinfo(np.int64).max, times)
        sn, sc, sh, sw = big.strides
        view = np.lib.stride_tricks.as_strided(
            big, shape=(n, c, oh, ow, k, k),
            strides=(sn, sc, sh * s, sw * s, sh, sw), writeable=False,
        )
        pooled = view.min(axis=(4, 5))
        pooled = np.where(pooled == np.iinfo(np.int64).max, NO_SPIKE, pooled)
        return SpikeTrain(pooled, train.window)

    # ------------------------------------------------------------------
    def run(self, images: np.ndarray) -> SimulationResult:
        """Simulate the full pipeline on a batch of images."""
        cfg = self.config
        window = cfg.window
        result = SimulationResult(output=np.empty(0), window=window,
                                  num_stages=self.snn.num_pipeline_stages,
                                  early_firing=self.early_firing)

        # Stage 0: encode the input image into first spikes.
        train = encode_values(np.asarray(images, dtype=np.float64),
                              self.kernel, window, cfg.theta0)
        result.traces.append(
            LayerTrace(name="input-encoder", input_spikes=0,
                       output_spikes=train.num_spikes,
                       neurons=train.num_neurons, sops=0)
        )

        layer_idx = 0
        for spec in self.snn.layers:
            if spec.is_weight_layer:
                out_shape = self._output_shape(spec, train.shape)
                pool = IFNeuronPool(shape=out_shape, kernel=self.kernel,
                                    theta0=cfg.theta0)
                in_spikes = train.num_spikes
                early_train = None
                if self.early_firing and not spec.is_output:
                    early_train = self._integrate_and_fire_early(spec, train,
                                                                 pool)
                else:
                    self._integrate(spec, train, pool)
                if spec.is_output:
                    output = pool.membrane * self.snn.output_scale
                    sops = in_spikes * (spec.weight.shape[0] if spec.kind == "linear"
                                        else _conv_fanout(spec, out_shape[-1]))
                    result.traces.append(
                        LayerTrace(name=f"{spec.kind}{layer_idx}(out)",
                                   input_spikes=in_spikes, output_spikes=0,
                                   neurons=int(np.prod(out_shape)),
                                   sops=sops,
                                   membrane=output if self.record_membranes else None)
                    )
                    result.output = output
                else:
                    if early_train is not None:
                        out_train = early_train
                    elif self.mode == "timestep":
                        out_train = pool.run_fire_phase(window)
                    else:
                        out_train = pool.fire_closed_form(window)
                    sops = in_spikes * (spec.weight.shape[0] if spec.kind == "linear"
                                        else _conv_fanout(spec, out_shape[-1]))
                    result.traces.append(
                        LayerTrace(name=f"{spec.kind}{layer_idx}",
                                   input_spikes=in_spikes,
                                   output_spikes=out_train.num_spikes,
                                   neurons=int(np.prod(out_shape)),
                                   sops=sops,
                                   membrane=pool.membrane.copy()
                                   if self.record_membranes else None)
                    )
                    train = out_train
                layer_idx += 1
            elif spec.kind == "maxpool":
                train = self._pool_times(spec, train)
            elif spec.kind == "avgpool":
                # Average pooling has no exact single-spike representation;
                # decode, pool in value domain, re-encode (documented loss).
                from ..tensor import avg_pool2d

                decoded = train.decode(self.kernel, cfg.theta0)
                pooled = avg_pool2d(Tensor(decoded), spec.kernel_size,
                                    spec.stride).data
                train = encode_values(pooled, self.kernel, window, cfg.theta0)
            elif spec.kind == "flatten":
                train = train.reshape((train.shape[0], -1))
        return result

    # ------------------------------------------------------------------
    def accuracy(self, images: np.ndarray, labels: np.ndarray,
                 batch_size: int = 64) -> float:
        correct = 0
        for start in range(0, len(labels), batch_size):
            res = self.run(images[start : start + batch_size])
            correct += int(
                (res.predictions() == labels[start : start + batch_size]).sum()
            )
        return correct / len(labels)

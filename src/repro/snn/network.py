"""Event-driven simulation of a converted TTFS spiking network.

The network consumes the :class:`~repro.cat.convert.LayerSpec` list that
:func:`repro.cat.convert.convert` produces and simulates the pipeline of
Fig. 1: every layer integrates its predecessor's spikes through the
dendrite kernel timestep by timestep, then encodes its own membrane
potentials into output spikes with the threshold sweep.

The layer walk itself lives in :mod:`repro.engine`;
:class:`EventDrivenTTFSNetwork` is the TTFS coding *strategy* over that
walk.  Two execution paths exist and are asserted equal by the
test-suite:

* ``timestep`` — faithful: loop over the window, decode the spikes of
  each timestep, push their PSPs through the layer's synapses, then run
  the fire-phase threshold sweep (this is what the hardware does);
* ``closed_form`` — fast: decode the whole spike train at once (the
  affine map is linear, so integration order is irrelevant) and use the
  closed-form spike time (Eq. 14).

The simulation also records the statistics the hardware model consumes:
spike counts, synaptic operations (SOPs) and per-layer occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal, Optional

import numpy as np

from ..cat.convert import ConvertedSNN, LayerSpec
from ..cat.kernels import NO_SPIKE, Base2Kernel
from ..engine import executor
from ..engine.executor import (
    FIRE_TOL,
    ExecutionContext,
    LayerTrace,
    SpikeTrainScheme,
    validate_backend,
)
from ..engine.plan import PlanSet, choose_backend, occupied_steps
from ..engine.registry import register_scheme
from ..engine.runner import PipelineRunner, merge_traces
from ..events import EventStream
from .neuron import IFNeuronPool
from .spikes import SpikeTrain, encode_values


@dataclass
class SimulationResult:
    """Output of an event-driven run."""

    output: np.ndarray  # readout membrane potentials
    traces: List[LayerTrace] = field(default_factory=list)
    window: int = 0
    num_stages: int = 0
    early_firing: bool = False

    @property
    def latency_timesteps(self) -> int:
        """End-to-end latency: one window per pipeline stage; early
        firing overlaps integrate/fire phases and halves it (Table 2)."""
        total = self.num_stages * self.window
        return total // 2 if self.early_firing else total

    @property
    def total_spikes(self) -> int:
        return sum(t.output_spikes for t in self.traces)

    @property
    def total_sops(self) -> int:
        return sum(t.sops for t in self.traces)

    def predictions(self) -> np.ndarray:
        return self.output.argmax(axis=1)


class EventDrivenTTFSNetwork(SpikeTrainScheme):
    """Simulate a :class:`ConvertedSNN` spike-by-spike.

    ``early_firing`` enables the T2FSNN latency optimisation [4]: a
    neuron may fire *during* its integration window based on its partial
    membrane sum, halving end-to-end latency.  The paper's design keeps
    the phases separate (exactness over latency); this flag exists so the
    trade-off can be measured (see ``bench_early_firing``).
    """

    def __init__(self, snn: ConvertedSNN,
                 mode: Literal["timestep", "closed_form"] = "closed_form",
                 record_membranes: bool = False,
                 early_firing: bool = False,
                 backend: str = "dense",
                 plans: Optional[PlanSet] = None):
        self.snn = snn
        self.config = snn.config
        self.kernel = Base2Kernel(tau=snn.config.tau, base=snn.config.base)
        self.mode = mode
        self.record_membranes = record_membranes
        self.early_firing = early_firing
        self.backend = validate_backend(backend)
        # compiled event-execution plans; an empty PlanSet fills itself
        # lazily (compile-on-first-use), a prebuilt one — e.g. loaded
        # from a ModelArtifact bundle — skips even that
        self.plans = plans if plans is not None else PlanSet()
        self.scheme_name = ("ttfs-early" if early_firing
                           else f"ttfs-{mode.replace('_', '-')}")

    # ------------------------------------------------------------------
    def _integrate(self, spec: LayerSpec, train: SpikeTrain,
                   pool: IFNeuronPool) -> None:
        """Integration phase: accumulate PSPs into the pool's membranes."""
        theta0 = self.config.theta0
        if self.mode == "timestep":
            for t in range(train.window + 1):
                mask = train.mask_at(t)
                if not mask.any():
                    continue
                decoded_step = mask * float(self.kernel.value(t)) * theta0
                pool.integrate(executor.affine(spec, decoded_step,
                                               include_bias=False))
        else:
            decoded = train.decode(self.kernel, theta0)
            pool.integrate(executor.affine(spec, decoded, include_bias=False))
        pool.add_bias(executor.bias_shaped(spec))

    def _integrate_and_fire_early(self, spec: LayerSpec, train: SpikeTrain,
                                  pool: IFNeuronPool) -> SpikeTrain:
        """Overlapped integration + fire (T2FSNN 'early firing').

        At every timestep the layer first integrates the spikes arriving
        at that step, then compares the *partial* membrane against the
        decaying threshold.  Neurons therefore fire on incomplete sums:
        latency halves, at the cost of coding error when later inputs
        would have changed the membrane.
        """
        theta0 = self.config.theta0
        window = train.window
        pool.add_bias(executor.bias_shaped(spec))
        for t in range(window + 1):
            mask = train.mask_at(t)
            if mask.any():
                decoded_step = mask * float(self.kernel.value(t)) * theta0
                pool.integrate(executor.affine(spec, decoded_step,
                                               include_bias=False))
            pool.fire_step(t)
        return SpikeTrain(times=pool.fire_times.copy(), window=window)

    # ------------------------------------------------------------------
    # Event-backend formulation
    # ------------------------------------------------------------------
    def _event_values(self, stream: EventStream) -> np.ndarray:
        """Per-event PSP amplitudes (the kernel-decoded spike values)."""
        return self.config.theta0 * self.kernel.value(stream.times)

    def _integrate_events(self, spec: LayerSpec, stream: EventStream,
                          plan=None) -> np.ndarray:
        """Integration phase as a scatter over only the events that
        occurred, plus the once-per-window bias (Eq. 4)."""
        membrane = executor.integrate_events(spec, stream,
                                             self._event_values(stream),
                                             plan)
        membrane += executor.bias_shaped(spec)
        return membrane

    @staticmethod
    def _fire_span(membrane: np.ndarray, fire_times: np.ndarray,
                   ascending: np.ndarray, a: int, b: int) -> None:
        """Fire checks for ``t = a..b`` on a constant membrane segment.

        Between event arrivals the membrane does not change, so the
        per-timestep comparison loop over the span collapses to one
        ``searchsorted`` against the (monotone) threshold slice — the
        same cumulative formulation as
        :func:`~repro.engine.executor.fire_times_from_membrane`.
        Fired membranes reset to zero (encoder feedback path).
        """
        flat_m = membrane.reshape(-1)
        flat_f = fire_times.reshape(-1)
        active = np.flatnonzero(flat_f == NO_SPIKE)
        if not active.size:
            return
        t = np.searchsorted(ascending[a:b + 1], -flat_m[active], side="left")
        hit = active[t <= b - a]
        flat_f[hit] = a + t[t <= b - a]
        flat_m[hit] = 0.0

    def _integrate_and_fire_early_events(self, spec: LayerSpec,
                                         stream: EventStream, out_shape,
                                         plan=None):
        """Event-driven early firing: walk only the *occupied* timesteps.

        Equivalent to :meth:`_integrate_and_fire_early`'s dense loop —
        at each arrival time the new events scatter in, then the partial
        membranes race the decaying threshold until the next arrival
        (a :meth:`_fire_span` per gap instead of a per-``t`` Python
        loop).  Returns ``(fire_times, membrane)``.
        """
        theta0, window = self.config.theta0, stream.window
        thresholds = theta0 * self.kernel.value(np.arange(window + 1))
        ascending = -(thresholds - FIRE_TOL)
        membrane = np.zeros(out_shape, dtype=np.float64)
        membrane += executor.bias_shaped(spec)
        fire_times = np.full(out_shape, NO_SPIKE, dtype=np.int64)
        next_t = 0
        for t, a, b in stream.time_groups():
            if t > next_t:
                self._fire_span(membrane, fire_times, ascending, next_t,
                                t - 1)
            group = stream.slice_events(a, b)
            membrane += executor.integrate_events(spec, group,
                                                  self._event_values(group),
                                                  plan)
            self._fire_span(membrane, fire_times, ascending, t, t)
            next_t = t + 1
        if next_t <= window:
            self._fire_span(membrane, fire_times, ascending, next_t, window)
        return fire_times, membrane

    # ------------------------------------------------------------------
    @staticmethod
    def _pool_times(spec: LayerSpec, train: SpikeTrain) -> SpikeTrain:
        """Earliest-spike max pooling (kept as an alias of the engine's)."""
        return executor.pool_times(spec, train)

    # ------------------------------------------------------------------
    # CodingScheme hooks
    # ------------------------------------------------------------------
    def encode_input(self, images: np.ndarray, ctx: ExecutionContext):
        cfg = self.config
        if self.backend in ("event", "auto"):
            # auto keeps an EventStream as the canonical inter-layer
            # state — the per-layer decision needs its event counts
            train = self.snn.input_events(images)
        else:
            train = encode_values(np.asarray(images, dtype=np.float64),
                                  self.kernel, cfg.window, cfg.theta0)
        ctx.record(LayerTrace(name="input-encoder", input_spikes=0,
                              output_spikes=train.num_spikes,
                              neurons=train.num_neurons, sops=0))
        return train

    def _weight_layer_events(self, spec: LayerSpec, stream: EventStream,
                             ctx: ExecutionContext):
        """Event-backend weight layer: scatter-integrate, then fire."""
        cfg = self.config
        out_shape = executor.output_shape(spec, stream.shape)
        in_spikes = stream.num_spikes
        sops = executor.layer_sops(spec, in_spikes)
        name = f"{spec.kind}{ctx.weight_index}"
        plan = self.plans.plan_for(spec, ctx.weight_index, stream.shape)

        if spec.is_output:
            membrane = self._integrate_events(spec, stream, plan)
            output = membrane * self.snn.output_scale
            ctx.record(LayerTrace(
                name=name + "(out)", input_spikes=in_spikes, output_spikes=0,
                neurons=int(np.prod(out_shape)), sops=sops, backend="event",
                membrane=output if self.record_membranes else None))
            return output

        if self.early_firing:
            out_times, membrane = self._integrate_and_fire_early_events(
                spec, stream, out_shape, plan)
        else:
            membrane = self._integrate_events(spec, stream, plan)
            if self.mode == "timestep":
                # the dense fire sweep resets fired membranes, exactly
                # like run_fire_phase on a fresh pool
                out_times = executor.fire_times_from_membrane(
                    membrane, self.kernel, cfg.window, cfg.theta0)
                membrane[out_times != NO_SPIKE] = 0.0
            else:
                out_times = self.kernel.spike_time(
                    np.maximum(membrane, 0.0), theta0=cfg.theta0,
                    window=cfg.window)
        out_stream = EventStream.from_dense(out_times, cfg.window)
        ctx.record(LayerTrace(
            name=name, input_spikes=in_spikes,
            output_spikes=out_stream.num_spikes,
            neurons=int(np.prod(out_shape)), sops=sops, backend="event",
            membrane=membrane.copy() if self.record_membranes else None))
        return out_stream

    def _resolve_backend(self, spec: LayerSpec, state) -> str:
        """The execution path this layer runs under the scheme backend.

        Under ``auto`` the layer's own event count prices the scatter
        against the dense walk (which runs once for the closed form and
        once per *occupied* timestep for the stepped/early paths).
        """
        if self.backend != "auto":
            return self.backend
        dense_steps = 1
        if self.mode == "timestep" or self.early_firing:
            dense_steps = max(occupied_steps(state), 1)
        return choose_backend(spec, state.num_events, state.shape,
                              dense_steps)

    def weight_layer(self, spec: LayerSpec, train, ctx: ExecutionContext):
        layer_backend = self._resolve_backend(spec, train)
        if layer_backend == "event":
            return self._weight_layer_events(spec, train, ctx)
        if isinstance(train, EventStream):
            # auto chose dense for this layer: densify the stream (the
            # spike times are identical either way, so the choice can
            # never change what the layer computes)
            train = SpikeTrain(train.to_dense(), train.window)
        cfg = self.config
        out_shape = executor.output_shape(spec, train.shape)
        pool = IFNeuronPool(shape=out_shape, kernel=self.kernel,
                            theta0=cfg.theta0)
        in_spikes = train.num_spikes
        sops = executor.layer_sops(spec, in_spikes)
        name = f"{spec.kind}{ctx.weight_index}"

        if spec.is_output:
            self._integrate(spec, train, pool)
            output = pool.membrane * self.snn.output_scale
            ctx.record(LayerTrace(
                name=name + "(out)", input_spikes=in_spikes, output_spikes=0,
                neurons=int(np.prod(out_shape)), sops=sops, backend="dense",
                membrane=output if self.record_membranes else None))
            return output

        if self.early_firing:
            out_train = self._integrate_and_fire_early(spec, train, pool)
        else:
            self._integrate(spec, train, pool)
            if self.mode == "timestep":
                out_train = pool.run_fire_phase(cfg.window)
            else:
                out_train = pool.fire_closed_form(cfg.window)
        ctx.record(LayerTrace(
            name=name, input_spikes=in_spikes,
            output_spikes=out_train.num_spikes,
            neurons=int(np.prod(out_shape)), sops=sops, backend="dense",
            membrane=pool.membrane.copy() if self.record_membranes else None))
        if self.backend == "auto":
            # back to the canonical event-stream state for later layers
            return EventStream.from_dense(out_train.times, out_train.window)
        return out_train

    def finalize(self, output: np.ndarray,
                 ctx: ExecutionContext) -> SimulationResult:
        return SimulationResult(output=output, traces=ctx.traces,
                                window=self.config.window,
                                num_stages=self.snn.num_pipeline_stages,
                                early_firing=self.early_firing)

    def merge(self, results: List[SimulationResult]) -> SimulationResult:
        return SimulationResult(
            output=np.concatenate([r.output for r in results], axis=0),
            traces=merge_traces([r.traces for r in results]),
            window=results[0].window, num_stages=results[0].num_stages,
            early_firing=results[0].early_firing)

    # ------------------------------------------------------------------
    def run(self, images: np.ndarray) -> SimulationResult:
        """Simulate the full pipeline on a batch of images."""
        return executor.run_pipeline(self, images)

    def accuracy(self, images: np.ndarray, labels: np.ndarray,
                 batch_size: int = 64) -> float:
        return PipelineRunner(self, max_batch=batch_size).accuracy(
            images, labels)


@register_scheme("ttfs-closed-form")
def _make_closed_form(snn: ConvertedSNN, **options) -> EventDrivenTTFSNetwork:
    return EventDrivenTTFSNetwork(snn, mode="closed_form", **options)


@register_scheme("ttfs-timestep")
def _make_timestep(snn: ConvertedSNN, **options) -> EventDrivenTTFSNetwork:
    return EventDrivenTTFSNetwork(snn, mode="timestep", **options)


@register_scheme("ttfs-early")
def _make_early(snn: ConvertedSNN, **options) -> EventDrivenTTFSNetwork:
    return EventDrivenTTFSNetwork(snn, early_firing=True, **options)

"""Plain-text table and series rendering for benchmark output."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def format_series(xs: Sequence, series: Dict[str, Sequence], title: str = "",
                  x_label: str = "x") -> str:
    """Render aligned columns for figure-style data (x vs several series)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def ascii_bars(values: Dict[str, float], width: int = 40,
               title: str = "") -> str:
    """Horizontal ASCII bar chart (for normalised Fig. 6-style data)."""
    peak = max(values.values())
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{name:>8s} |{bar} {value:.3f}")
    return "\n".join(lines)


def format_sweep_report(report: dict) -> str:
    """Render a ``repro.engine.sweep`` report dict as an aligned table.

    Consumes the machine-readable report produced by
    :func:`repro.engine.sweep.run_sweep` (and persisted by
    ``repro evaluate --report``); one row per grid point.
    """
    headers = ["scheme", "T", "batch", "acc", "spikes", "SOPs",
               "time (s)", "cache h/m"]
    rows = []
    for p in report.get("points", []):
        rows.append([
            p.get("scheme", "?"), p.get("window"), p.get("max_batch"),
            p.get("accuracy"), p.get("total_spikes"), p.get("total_sops"),
            p.get("elapsed_s"),
            f"{p.get('cache_hits', 0)}/{p.get('cache_misses', 0)}",
        ])
    totals = report.get("cache", {})
    title = (f"sweep over {report.get('num_images', '?')} images "
             f"({report.get('workers', 1)} worker(s), cache "
             f"{totals.get('hits', 0)} hit / {totals.get('misses', 0)} miss)")
    return format_table(headers, rows, title=title)


def paper_vs_measured(rows: List[dict], keys: Sequence[str]) -> str:
    """Standard benchmark epilogue: paper value vs our measurement."""
    headers = ["metric", "paper", "measured", "ratio"]
    out_rows = []
    for row in rows:
        paper = row.get("paper")
        measured = row.get("measured")
        ratio = None
        if paper not in (None, 0) and measured is not None:
            ratio = measured / paper
        out_rows.append([row.get("metric", "?"), paper, measured, ratio])
    return format_table(headers, out_rows)

"""Metrics, reporting and the paper's reference numbers."""

from . import paper
from .metrics import (
    ConversionResult,
    crossover_bits,
    geometric_speedup,
    latency_timesteps,
    monotonically_improves,
)
from .reporting import (
    ascii_bars,
    format_series,
    format_sweep_report,
    format_table,
    paper_vs_measured,
)

__all__ = [
    "paper",
    "ConversionResult",
    "crossover_bits",
    "geometric_speedup",
    "latency_timesteps",
    "monotonically_improves",
    "ascii_bars",
    "format_series",
    "format_sweep_report",
    "format_table",
    "paper_vs_measured",
]

"""Cross-cutting metrics used by benchmarks and tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class ConversionResult:
    """ANN/SNN accuracy pair for one configuration (a Table 1 cell)."""

    method: str
    window: int
    tau: float
    dataset: str
    ann_accuracy: float
    snn_accuracy: float

    @property
    def conversion_loss(self) -> float:
        """acc_SNN - acc_ANN in percentage points (negative = loss)."""
        return 100.0 * (self.snn_accuracy - self.ann_accuracy)

    def as_row(self) -> list:
        return [
            self.method, f"{self.window}/{self.tau:g}", self.dataset,
            100 * self.ann_accuracy, 100 * self.snn_accuracy,
            self.conversion_loss,
        ]


def latency_timesteps(num_weight_layers: int, window: int,
                      early_firing: bool = False) -> int:
    """End-to-end SNN latency (Table 2).

    One window encodes the input, one per weight layer; early firing [4]
    overlaps fire and integration phases, halving the total.
    """
    total = (num_weight_layers + 1) * window
    return total // 2 if early_firing else total


def monotonically_improves(values: Sequence[float], tolerance: float = 0.0
                           ) -> bool:
    """True if each value is >= the previous (within tolerance)."""
    arr = np.asarray(values, dtype=np.float64)
    return bool(np.all(np.diff(arr) >= -tolerance))


def crossover_bits(acc_by_bits_a: dict, acc_by_bits_b: dict) -> Optional[int]:
    """Smallest bit width where quantiser A overtakes quantiser B (Fig. 4)."""
    for bits in sorted(acc_by_bits_a):
        if bits in acc_by_bits_b and acc_by_bits_a[bits] > acc_by_bits_b[bits]:
            return bits
    return None


def geometric_speedup(fps_a: float, fps_b: float) -> float:
    """fps ratio A/B (>1 means A is faster)."""
    return fps_a / fps_b

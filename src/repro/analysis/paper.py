"""Reference constants from the paper, for side-by-side comparison.

Every table and figure the evaluation reproduces is mirrored here so the
benchmarks can print paper-vs-measured rows and EXPERIMENTS.md can be
regenerated mechanically.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Table 1: accuracies (conversion losses) of CAT, VGG-16
# keys: (method, (T, tau), dataset) -> (snn_accuracy_%, conversion_loss_pp)
# ----------------------------------------------------------------------
TABLE1 = {
    ("I", (48, 8), "cifar10"): (92.32, -1.33),
    ("I", (48, 8), "cifar100"): (67.93, -4.55),
    ("I", (48, 8), "tiny-imagenet"): (58.75, -2.28),
    ("I", (24, 4), "cifar10"): (86.99, -6.55),
    ("I", (24, 4), "cifar100"): (52.48, -20.23),
    ("I", (24, 4), "tiny-imagenet"): (49.04, -12.03),
    ("I", (12, 2), "cifar10"): (62.78, -30.69),
    ("I", (12, 2), "cifar100"): (15.07, -57.52),
    ("I", (12, 2), "tiny-imagenet"): (17.19, -43.84),
    ("I+II", (48, 8), "cifar10"): (92.85, -0.23),
    ("I+II", (48, 8), "cifar100"): (70.62, -1.06),
    ("I+II", (48, 8), "tiny-imagenet"): (59.31, -1.61),
    ("I+II", (24, 4), "cifar10"): (90.92, -1.80),
    ("I+II", (24, 4), "cifar100"): (64.25, -6.34),
    ("I+II", (24, 4), "tiny-imagenet"): (51.89, -8.52),
    ("I+II", (12, 2), "cifar10"): (78.21, -12.98),
    ("I+II", (12, 2), "cifar100"): (33.93, -33.27),
    ("I+II", (12, 2), "tiny-imagenet"): (21.18, -37.88),
    ("I+II+III", (48, 8), "cifar10"): (93.18, -0.02),
    ("I+II+III", (48, 8), "cifar100"): (71.72, 0.00),
    ("I+II+III", (48, 8), "tiny-imagenet"): (60.58, -0.30),
    ("I+II+III", (24, 4), "cifar10"): (92.45, 0.04),
    ("I+II+III", (24, 4), "cifar100"): (70.30, -0.13),
    ("I+II+III", (24, 4), "tiny-imagenet"): (59.22, -1.05),
    ("I+II+III", (12, 2), "cifar10"): (90.77, -0.05),
    ("I+II+III", (12, 2), "cifar100"): (66.00, -0.56),
    ("I+II+III", (12, 2), "tiny-imagenet"): (54.99, -3.90),
}

# ----------------------------------------------------------------------
# Table 2: comparison with T2FSNN.  Columns in paper order.
# ----------------------------------------------------------------------
TABLE2 = [
    {"system": "T2FSNN", "base": "e", "T": 80, "tau": 20, "latency": 680,
     "cifar10": 91.43, "cifar100": 68.79, "tiny-imagenet": None},
    {"system": "This work", "base": "e", "T": 80, "tau": 20, "latency": 1360,
     "cifar10": 93.36, "cifar100": 72.14, "tiny-imagenet": 60.63},
    {"system": "This work", "base": "2", "T": 48, "tau": 8, "latency": 816,
     "cifar10": 93.18, "cifar100": 71.72, "tiny-imagenet": 60.58},
    {"system": "This work", "base": "2", "T": 24, "tau": 4, "latency": 408,
     "cifar10": 92.45, "cifar100": 70.30, "tiny-imagenet": 59.22},
]

# ----------------------------------------------------------------------
# Figure 3: phi_TTFS switch epochs tested (LR schedule /10 @ 80/120/160).
# Epochs < 160 (LR > 1e-3) crash; epochs >= 160 (LR = 1e-4) are stable.
# ----------------------------------------------------------------------
FIG3_SWITCH_EPOCHS = (40, 90, 100, 170, 180)
FIG3_STABLE_EPOCHS = (170, 180)
FIG3_SELECTED_EPOCH = 170

# ----------------------------------------------------------------------
# Figure 4: selected quantisation point.
# ----------------------------------------------------------------------
FIG4_SELECTED = {"bits": 5, "z_w": 1, "T": 24, "tau": 4}
FIG4_BIT_WIDTHS = (4, 5, 6, 7, 8)

# ----------------------------------------------------------------------
# Figure 6: PE array savings (fractions of the baseline).
# ----------------------------------------------------------------------
FIG6 = {
    "area_saving_cat": 0.127,
    "area_saving_log": 0.081,
    "power_saving_cat": 0.147,
    "power_saving_log": 0.086,
}

# ----------------------------------------------------------------------
# Table 4: processor comparison.
# ----------------------------------------------------------------------
TABLE4 = {
    "this_work": {
        "type": "SNN", "process_nm": 28, "voltage": 0.99,
        "area_mm2": 0.9102, "frequency_mhz": 250, "num_pes": 128,
        "throughput_gsops": 32.0, "power_mw": 67.3,
        "cifar10": {"accuracy": 91.7, "energy_uj": 486.7, "fps": 327},
        "cifar100": {"accuracy": 67.9, "energy_uj": 503.6, "fps": 294},
        "tiny-imagenet": {"accuracy": 57.4, "energy_uj": 1426.0, "fps": 63},
    },
    "tianjic": {
        "type": "SNN", "process_nm": 28, "voltage": 0.85,
        "area_mm2": 14.44, "frequency_mhz": 300, "num_pes": 2496,
        "throughput_gsops": 683.2, "power_mw": 950.0,
        "cifar10": {"accuracy": 89.5, "energy_uj": 129.0, "fps": 46827},
        "cifar100": None,
        "tiny-imagenet": None,
    },
    "tpu": {
        "type": "ANN", "process_nm": 28, "voltage": 0.99,
        "area_mm2": 1.4358, "frequency_mhz": 250, "num_pes": 256,
        "throughput_gsops": 64.0, "power_mw": 100.1,
        "cifar10": {"accuracy": 93.0, "energy_uj": 978.5, "fps": 204},
        "cifar100": {"accuracy": 71.7, "energy_uj": 980.0, "fps": 203},
        "tiny-imagenet": {"accuracy": 61.4, "energy_uj": 2759.0, "fps": 51},
    },
}

# Hardware design point selected in Sec. 3.2 / Sec. 4.
SELECTED_DESIGN = {"T": 24, "tau": 4, "a_w": "2^-1/2", "weight_bits": 5}

"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs PEP 660 support that the
installed setuptools lacks offline; `python setup.py develop` (or pip's
legacy editable path) works everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)

"""TTFS vs rate coding — the quantitative version of the paper's Sec. 1.

The paper's premise: temporal (first-spike) coding reaches ANN-level
accuracy with *at most one spike per neuron*, where rate coding needs
spike counts that grow with the time window.  This bench runs the same
converted network under both codings and measures the accuracy /
spike-count / latency frontier.
"""

from repro.analysis import format_table
from repro.snn import EventDrivenTTFSNetwork, RateCodedNetwork

from conftest import save_result

RATE_WINDOWS = (8, 16, 32, 64)


def test_rate_vs_ttfs_frontier(benchmark, cat_full_snn, bench_c10):
    x, y = bench_c10.test_x, bench_c10.test_y
    ttfs_net = EventDrivenTTFSNetwork(cat_full_snn)

    def run_ttfs():
        return ttfs_net.run(x)

    ttfs_res = benchmark.pedantic(run_ttfs, rounds=1, iterations=1)
    ttfs_acc = float((ttfs_res.predictions() == y).mean())
    ttfs_spikes = sum(t.output_spikes for t in ttfs_res.traces[1:-1])

    rows = [["TTFS (ours)", cat_full_snn.config.window,
             round(ttfs_acc, 3), ttfs_spikes,
             round(ttfs_spikes / sum(t.neurons
                                     for t in ttfs_res.traces[1:-1]), 2)]]
    rate_accs = {}
    for steps in RATE_WINDOWS:
        rate = RateCodedNetwork(cat_full_snn, timesteps=steps)
        res = rate.run(x)
        acc = float((res.predictions() == y).mean())
        rate_accs[steps] = acc
        rows.append([f"rate T={steps}", steps, round(acc, 3),
                     res.total_spikes,
                     round(res.mean_spikes_per_neuron, 2)])

    table = format_table(
        ["coding", "window", "accuracy", "hidden spikes", "spikes/neuron"],
        rows, title="TTFS vs rate coding on the same converted network")
    save_result("rate_vs_ttfs", table + (
        "\n\nTTFS delivers its accuracy with <= 1 spike/neuron; rate "
        "coding's spike count grows linearly with the window — the "
        "event-count gap that drives the paper's energy claims."))

    # Shape criteria
    assert ttfs_acc >= max(rate_accs.values()) - 0.02
    worst_rate = RateCodedNetwork(cat_full_snn, RATE_WINDOWS[0]).run(x)
    assert worst_rate.total_spikes > ttfs_spikes
    # rate coding accuracy is (weakly) monotone in its window
    accs = [rate_accs[s] for s in RATE_WINDOWS]
    tol = 2.5 / len(y)
    assert all(b >= a - tol for a, b in zip(accs, accs[1:]))

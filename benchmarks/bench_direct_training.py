"""Direct training vs ANN-to-SNN conversion (the paper's Sec. 1 framing).

The paper motivates conversion-based SNNs by the accuracy gap of direct
training ([2]: surrogate gradients).  This bench trains both on the same
dataset with the same epoch budget and compares final SNN accuracy, plus
the ANN ceiling.
"""

from repro.analysis import format_table
from repro.cat import convert, evaluate
from repro.snn import train_direct

from conftest import save_result


def test_direct_vs_conversion(benchmark, bench_c100):
    from conftest import train_bench_model

    # Train CAT on the harder 12-class stand-in (the easy set saturates
    # every method at 1.0, hiding the gap the paper describes).
    model, cfg = train_bench_model(bench_c100, "I+II+III", 12, 2.0, seed=4)

    def run_direct():
        return train_direct(bench_c100, epochs=10, timesteps=8, lr=0.1,
                            channels=(16, 32), seed=4)

    direct = benchmark.pedantic(run_direct, rounds=1, iterations=1)

    ann_acc = evaluate(model, bench_c100.test_x, bench_c100.test_y)
    snn = convert(model, cfg, calibration=bench_c100.train_x[:64])
    cat_acc = snn.accuracy(bench_c100.test_x, bench_c100.test_y)

    table = format_table(
        ["system", "SNN accuracy", "notes"],
        [
            ["direct training (surrogate grad, T=8)",
             round(direct.final_test_acc, 3), "BPTT, fast-sigmoid [2]"],
            ["CAT conversion (ours)", round(cat_acc, 3),
             f"T={cfg.window}, one spike/neuron"],
            ["ANN ceiling", round(ann_acc, 3), "same epochs"],
        ],
        title="direct SNN training vs conversion-aware training "
              "(12-class stand-in)")
    save_result("direct_vs_conversion", table + (
        "\n\npaper Sec. 1: direct approaches 'suffer from still low "
        "accuracies compared to ANN' at VGG-16/CIFAR scale.  Honest "
        "bench-scale note: with only 2 conv layers and T=8, surrogate "
        "BPTT is competitive — the literature's gap grows with depth "
        "(gradient mismatch compounds through layers and timesteps), "
        "which a micro benchmark cannot exhibit.  What does transfer: "
        "conversion hits the ANN ceiling exactly, and inference stays "
        "one-spike-per-neuron where the direct SNN spikes every step."))

    # Criteria that hold at any scale: conversion reaches the ANN
    # ceiling (CAT's exactness) and direct training learns but cannot
    # exceed practical bounds.
    assert cat_acc >= ann_acc - 0.02
    assert direct.final_test_acc > 2.0 / bench_c100.num_classes

"""Training data path: streaming loader, fused augmentation, pool kernels.

Four claims, one bench:

* **Data-path images/sec during a training epoch** — what the trainer
  observes.  A real micro-VGG train step (forward, cross-entropy,
  backward) consumes batches while we time every ``next()`` call; the
  data-path rate is images divided by the time the trainer spent
  *stalled waiting for batches*.  The historical loader (whole dataset
  in RAM, per-image crop/flip loops, synchronous) stalls the trainer
  for its full production cost every batch; the streaming loader
  produces fused vectorised batches on a prefetch thread while the
  previous batch trains, so its stalls are queue handoffs.  The
  augmented synthetic-CIFAR cell must clear 3x.  Both paths draw the
  same RNG sequence, so their batch streams are bitwise identical
  (asserted here on first batches; exhaustively in tests/data/).
* **Pooling backward kernels** — max-pool backward on the shared
  ``scatter_add_rows`` segment-sum kernel and avg-pool backward as one
  strided broadcast, timed closure-vs-reference on the VGG training
  shape and checked bitwise against the historical ``np.add.at`` /
  K*K-loop formulations.
* **Streaming peak RSS** — training ``train_micro_snn``'s config
  end-to-end through ``repro run`` over a sharded dataset keeps peak
  RSS (``VmHWM``) below a process that materialises the whole train
  split first.  Both children read the same shard directory.
* **Streaming parity** — both children report identical accuracy
  metrics: streamed training is the same training.

Writes ``benchmarks/results/train.txt`` (human table) and
``benchmarks/results/train.json`` (machine-readable; diffed against the
committed ``BENCH_train.json`` by ``compare.py --suite train``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np

from repro.analysis import format_table
from repro.data import StreamingDataLoader, open_shards, write_shards
from repro.data.datasets import make_dataset, synthetic_cifar10
from repro.data.transforms import (
    random_crop_reference,
    random_hflip_reference,
)
from repro.nn import vgg_micro
from repro.tensor import Tensor, cross_entropy
from repro.tensor.conv import avg_pool2d, max_pool2d

from conftest import RESULTS_DIR, save_result

BATCH = 64
CROP_PAD = 2
EPOCH_ROUNDS = 3          # epochs per cell; best stall/wall kept
EPOCH_SPEEDUP_FLOOR = 3.0
POOL_REPS = 30
# shared CI runners time kernels noisily; locally the pool kernels must
# actually win (they clear 2-3x on a quiet machine)
POOL_SPEEDUP_FLOOR = 0.75 if os.environ.get("CI") else 1.0

#: The RSS comparison trains this many images per class through
#: ``repro run``; large enough that the materialised train split
#: dominates the interpreter baseline.
RSS_TRAIN_PER_CLASS = 1500
RSS_SHARD_SIZE = 500


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


# ----------------------------------------------------------------------
# Claim 1: data-path images/sec under a real training consumer
# ----------------------------------------------------------------------

def _reference_batches(images, labels, rng, augment):
    """The historical loader: in-RAM slice + per-image transforms."""
    order = np.arange(len(labels))
    rng.shuffle(order)
    for start in range(0, len(order), BATCH):
        idx = order[start : start + BATCH]
        x = images[idx]
        if augment:
            x = random_crop_reference(x, CROP_PAD, rng)
            x = random_hflip_reference(x, rng)
        yield x, labels[idx]


def _train_epoch(batches, model):
    """Consume ``batches`` with a real train step; time the stalls."""
    stall, n = 0.0, 0
    wall0 = time.perf_counter()
    it = iter(batches)
    while True:
        t0 = time.perf_counter()
        try:
            x, y = next(it)
        except StopIteration:
            break
        stall += time.perf_counter() - t0
        n += len(y)
        loss = cross_entropy(model(Tensor(x)), y)
        loss.backward()
    return time.perf_counter() - wall0, stall, n


def _bench_epoch_grid(tmp_path):
    dataset = synthetic_cifar10()          # 2000 train images, 32x32
    sharded = open_shards(write_shards(
        dataset, tmp_path / "aug-shards", shard_size=256))
    model = vgg_micro(num_classes=10, input_size=32)

    # bitwise parity spot-check: the streaming batches ARE the
    # reference batches, so the speedup is not buying different data
    loader = StreamingDataLoader(sharded, batch_size=BATCH, augment=True,
                                 crop_pad=CROP_PAD, seed=5, prefetch=2)
    reference = _reference_batches(dataset.train_x, dataset.train_y,
                                   np.random.default_rng(5), True)
    with loader:
        for i, ((x, y), (rx, ry)) in enumerate(zip(loader, reference)):
            np.testing.assert_array_equal(x, rx)
            np.testing.assert_array_equal(y, ry)
            if i == 2:
                break

    records = []
    for augment, case in ((False, "epoch-plain"), (True, "epoch-aug")):
        ref_best, stream_best = None, None
        for r in range(EPOCH_ROUNDS):
            got = _train_epoch(_reference_batches(
                dataset.train_x, dataset.train_y,
                np.random.default_rng(r), augment), model)
            if ref_best is None or got[1] < ref_best[1]:
                ref_best = got
            loader = StreamingDataLoader(
                sharded, batch_size=BATCH, augment=augment,
                crop_pad=CROP_PAD, seed=r, prefetch=2)
            with loader:
                got = _train_epoch(loader, model)
            if stream_best is None or got[1] < stream_best[1]:
                stream_best = got
        n = ref_best[2]
        assert n == stream_best[2] == len(dataset.train_y)
        records.append({
            "case": case,
            "images": n,
            "reference_wall_s": round(ref_best[0], 3),
            "streaming_wall_s": round(stream_best[0], 3),
            "reference_ips": round(n / ref_best[1], 1),
            "streaming_ips": round(n / stream_best[1], 1),
            "speedup": round(ref_best[1] / stream_best[1], 2),
        })
    return records


# ----------------------------------------------------------------------
# Claim 2: pooling backward kernels
# ----------------------------------------------------------------------

def _max_pool_backward_reference(x, g, kernel, stride):
    n, c, h, w = x.shape
    oh, ow = g.shape[2], g.shape[3]
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x, shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw), writeable=False)
    arg = view.reshape(n, c, oh, ow, kernel * kernel).argmax(axis=-1)
    hi = arg // kernel + stride * np.arange(oh).reshape(1, 1, oh, 1)
    wj = arg % kernel + stride * np.arange(ow).reshape(1, 1, 1, ow)
    gx = np.zeros(x.shape, dtype=g.dtype)
    ni = np.arange(n).reshape(n, 1, 1, 1)
    ci = np.arange(c).reshape(1, c, 1, 1)
    np.add.at(gx, (ni, ci, hi, wj), g)
    return gx


def _avg_pool_backward_reference(x_shape, g, kernel, stride):
    gx = np.zeros(x_shape, dtype=g.dtype)
    gk = g * (1.0 / (kernel * kernel))
    oh, ow = g.shape[2], g.shape[3]
    for ki in range(kernel):
        for kj in range(kernel):
            gx[:, :, ki : ki + stride * oh : stride,
               kj : kj + stride * ow : stride] += gk
    return gx


def _bench_pool_backward():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((BATCH, 32, 16, 16)).astype(np.float32)
    g = rng.standard_normal((BATCH, 32, 8, 8)).astype(np.float32)
    records = []
    for case, pool, reference in (
            ("maxpool-backward", max_pool2d,
             lambda: _max_pool_backward_reference(x, g, 2, 2)),
            ("avgpool-backward", avg_pool2d,
             lambda: _avg_pool_backward_reference(x.shape, g, 2, 2))):
        t = Tensor(x, requires_grad=True)
        out = pool(t, 2, 2)
        # the op closure is the optimised kernel; calling it directly
        # times the backward alone, exactly what the reference computes
        (got,) = out._backward(g)
        np.testing.assert_array_equal(got, reference())  # bitwise
        new_t = min(_timed(lambda: out._backward(g))
                    for _ in range(POOL_REPS))
        ref_t = min(_timed(reference) for _ in range(POOL_REPS))
        records.append({
            "case": case,
            "reference_ms": round(ref_t * 1e3, 3),
            "kernel_ms": round(new_t * 1e3, 3),
            "speedup": round(ref_t / new_t, 2),
        })
    return records


# ----------------------------------------------------------------------
# Claims 3+4: streaming peak RSS + parity through ``repro run``
# ----------------------------------------------------------------------

_HWM_HELPER = """
def peak_rss_kb():
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
"""

_STREAM_CHILD = _HWM_HELPER + """
import json, sys
from repro.cli import main

cfg, report = sys.argv[1], sys.argv[2]
code = main(["run", cfg, "--report", report])
assert code == 0, code
metrics = json.load(open(report))["metrics"]["train"]
print(json.dumps({
    "peak_rss_kb": peak_rss_kb(),
    "final_test_acc": metrics["final_test_acc"],
    "best_test_acc": metrics["best_test_acc"],
}))
"""

_INMEMORY_CHILD = _HWM_HELPER + """
import json, sys
import numpy as np
from repro.api import Experiment, config_from_file
from repro.api.stages import PipelineContext
from repro.data import Dataset, open_shards

cfg_path, shards = sys.argv[1], sys.argv[2]
sharded = open_shards(shards)
dataset = Dataset(
    train_x=sharded.gather_train(np.arange(sharded.num_train)),
    train_y=sharded.train_y, test_x=sharded.test_x,
    test_y=sharded.test_y, num_classes=sharded.num_classes,
    name=sharded.name, meta=dict(sharded.meta))
config = config_from_file(cfg_path)
report = Experiment(config).run(
    context=PipelineContext(config=config, dataset=dataset))
metrics = report.metrics["train"]
print(json.dumps({
    "peak_rss_kb": peak_rss_kb(),
    "final_test_acc": metrics["final_test_acc"],
    "best_test_acc": metrics["best_test_acc"],
}))
"""


def _run_child(script, *args):
    env = dict(os.environ)
    src = str(RESULTS_DIR.parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", script, *map(str, args)],
                         capture_output=True, text=True, env=env,
                         timeout=1800)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _bench_streaming_rss(tmp_path):
    import dataclasses

    from repro.api.config import DatasetConfig, config_to_dict
    from repro.api.presets import micro_pipeline_config

    # noisier than the mini presets so accuracy is informative (strictly
    # between 0 and 1) and its equality across children means something
    dataset = make_dataset(10, 16, train_per_class=RSS_TRAIN_PER_CLASS,
                           test_per_class=20, noise_std=2.5, max_shift=4,
                           seed=17, name="bench-train-rss")
    shards = write_shards(dataset, tmp_path / "rss-shards",
                          shard_size=RSS_SHARD_SIZE)
    del dataset  # children measure their own fresh address spaces

    # train_micro_snn's config (micro VGG, train+convert), pointed at
    # the shard directory; one epoch keeps the bench CI-sized
    config = micro_pipeline_config(stages=("train", "convert"),
                                   epochs=1, name="train-micro-snn")
    config = dataclasses.replace(
        config, dataset=DatasetConfig(shards=str(shards), prefetch=2))
    cfg_path = tmp_path / "rss-config.json"
    cfg_path.write_text(json.dumps(config_to_dict(config), indent=2))

    streaming = _run_child(_STREAM_CHILD, cfg_path,
                           tmp_path / "rss-report.json")
    inmemory = _run_child(_INMEMORY_CHILD, cfg_path, shards)
    # same shards, same seed, same schedule: identical training
    for metric in ("final_test_acc", "best_test_acc"):
        assert streaming[metric] == inmemory[metric], (streaming, inmemory)
    return {
        "case": "train-rss",
        "train_images": 10 * RSS_TRAIN_PER_CLASS,
        "streaming_rss_mb": round(streaming["peak_rss_kb"] / 1024, 1),
        "inmemory_rss_mb": round(inmemory["peak_rss_kb"] / 1024, 1),
        "final_test_acc": streaming["final_test_acc"],
        "speedup": round(inmemory["peak_rss_kb"]
                         / streaming["peak_rss_kb"], 2),
    }


# ----------------------------------------------------------------------

def test_train_data_path(tmp_path):
    epochs = _bench_epoch_grid(tmp_path)
    pools = _bench_pool_backward()
    rss = _bench_streaming_rss(tmp_path)
    records = [*epochs, *pools, rss]

    plain, aug = epochs
    rows = [
        ["epoch data-path img/s (plain)", plain["reference_ips"],
         plain["streaming_ips"], plain["speedup"]],
        ["epoch data-path img/s (augmented)", aug["reference_ips"],
         aug["streaming_ips"], aug["speedup"]],
        ["max-pool backward ms", pools[0]["reference_ms"],
         pools[0]["kernel_ms"], pools[0]["speedup"]],
        ["avg-pool backward ms", pools[1]["reference_ms"],
         pools[1]["kernel_ms"], pools[1]["speedup"]],
        ["repro-run peak RSS MB", rss["inmemory_rss_mb"],
         rss["streaming_rss_mb"], rss["speedup"]],
    ]
    table = format_table(
        ["measure", "reference", "optimised", "ratio"], rows,
        title=f"training data path, batch {BATCH}, "
              f"{rss['train_images']} streamed images")
    save_result("train", table + (
        "\n\nEpoch rows: images/sec through the data path as the trainer"
        " sees it (images / time stalled in next()) while a real"
        " micro-VGG step consumes the batches; reference = historical"
        " in-RAM per-image loader, optimised = sharded streaming loader"
        " with fused vectorised augmentation on a prefetch thread."
        " Batch streams are bitwise identical.  Pool rows time the"
        " backward closures against the historical np.add.at / K*K-loop"
        " formulations.  RSS row trains train-micro-snn end-to-end"
        " through repro run; the reference process materialises the"
        " whole train split from the same shards first (peak = VmHWM)."))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "train.json").write_text(json.dumps(
        {"schema_version": 1, "batch_size": BATCH,
         "records": records}, indent=2) + "\n")

    assert aug["speedup"] >= EPOCH_SPEEDUP_FLOOR, aug
    assert plain["speedup"] >= POOL_SPEEDUP_FLOOR, plain
    assert rss["speedup"] > 1.0, rss
    assert 0.0 < rss["final_test_acc"] < 1.0, rss
    for record in pools:
        assert record["speedup"] >= POOL_SPEEDUP_FLOOR, record

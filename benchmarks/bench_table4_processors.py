"""Table 4 — processor comparison: this work vs Tianjic vs redesigned TPU.

The hardware models run the exact VGG-16 geometry for all three
datasets.  Accuracy rows come from the algorithm benches (Table 1/2);
this bench reproduces the architecture rows: area, power, throughput,
energy/image and fps.

Shape criteria:
* our SNN beats the TPU-like array on both energy/image and fps on
  every dataset;
* Tianjic keeps its published throughput/energy advantage on CIFAR-10
  but cannot hold VGG-16 on-chip (no CIFAR-100 / Tiny-ImageNet rows);
* area/fps/energy land within 2x of the paper's absolute numbers.
"""

import pytest

from repro.analysis import format_table, paper
from repro.hw import (
    MEASURED_VGG_PROFILE,
    SNNProcessor,
    TianjicLikeProcessor,
    TPULikeProcessor,
    vgg16_geometry,
)

from conftest import save_result

WORKLOADS = {
    "cifar10": (32, 10),
    "cifar100": (32, 100),
    "tiny-imagenet": (64, 200),
}


@pytest.fixture(scope="module")
def reports():
    snn = SNNProcessor()
    tpu = TPULikeProcessor()
    tianjic = TianjicLikeProcessor()
    out = {"snn": {}, "tpu": {}, "tianjic": {}}
    for name, (size, classes) in WORKLOADS.items():
        geo = vgg16_geometry(input_size=size, num_classes=classes)
        out["snn"][name] = snn.run(geo, MEASURED_VGG_PROFILE)
        out["tpu"][name] = tpu.run(geo)
        out["tianjic"][name] = tianjic.run(geo)
    out["snn_area"] = snn.area_mm2()
    return out


def test_table4_processor_comparison(benchmark, reports):
    benchmark.pedantic(
        SNNProcessor().run,
        args=(vgg16_geometry(32, 10), MEASURED_VGG_PROFILE),
        rounds=3, iterations=1,
    )

    ours = paper.TABLE4["this_work"]
    tpu_ref = paper.TABLE4["tpu"]
    rows = []
    for ds in WORKLOADS:
        snn_r = reports["snn"][ds]
        tpu_r = reports["tpu"][ds]
        rows.append([
            ds,
            round(snn_r.fps, 1), ours[ds]["fps"],
            round(snn_r.energy_per_image_uj, 1), ours[ds]["energy_uj"],
            round(tpu_r.fps, 1), tpu_ref[ds]["fps"],
            round(tpu_r.energy_per_image_uj, 1), tpu_ref[ds]["energy_uj"],
        ])
    table = format_table(
        ["dataset", "SNN fps", "paper", "SNN uJ", "paper",
         "TPU fps", "paper", "TPU uJ", "paper"],
        rows, title="Table 4: per-image metrics (measured vs paper)")

    meta = format_table(
        ["metric", "this work", "paper", "TPU-like", "paper"],
        [
            ["area mm2", round(reports["snn_area"], 4), ours["area_mm2"],
             TPULikeProcessor().cfg.area_mm2, tpu_ref["area_mm2"]],
            ["peak GSOP|GMAC/s", reports["snn"]["cifar10"].peak_gsops,
             ours["throughput_gsops"], TPULikeProcessor().cfg.peak_gmacs,
             tpu_ref["throughput_gsops"]],
            ["power mW", round(reports["snn"]["cifar10"].power_mw, 1),
             ours["power_mw"], TPULikeProcessor().cfg.power_mw,
             tpu_ref["power_mw"]],
        ])
    tianjic = reports["tianjic"]["cifar10"]
    tj_note = (f"Tianjic (published ref): {tianjic.fps:.0f} fps, "
               f"{tianjic.energy_per_image_uj:.0f} uJ on CIFAR-10; "
               f"VGG-16 fits on-chip: "
               f"{reports['tianjic']['cifar100'].fits_on_chip}")
    save_result("table4_processors", f"{table}\n\n{meta}\n\n{tj_note}")

    # --- shape criteria -------------------------------------------------
    for ds in WORKLOADS:
        snn_r, tpu_r = reports["snn"][ds], reports["tpu"][ds]
        assert snn_r.energy_per_image_uj < tpu_r.energy_per_image_uj, ds
        assert snn_r.fps > tpu_r.fps, ds
    # Tianjic advantage + capacity limit
    assert tianjic.fps > reports["snn"]["cifar10"].fps
    assert (tianjic.energy_per_image_uj
            < reports["snn"]["cifar10"].energy_per_image_uj)
    assert not reports["tianjic"]["cifar100"].fits_on_chip
    # absolute numbers within 2x of the paper
    for ds in WORKLOADS:
        assert (ours[ds]["fps"] / 2 < reports["snn"][ds].fps
                < ours[ds]["fps"] * 2), ds
        assert (ours[ds]["energy_uj"] / 2
                < reports["snn"][ds].energy_per_image_uj
                < ours[ds]["energy_uj"] * 2), ds
    assert reports["snn_area"] == pytest.approx(ours["area_mm2"], rel=0.1)


def test_table4_dram_ablation(benchmark, reports):
    """Ablation called out in DESIGN.md: the 48 KB input buffer's reuse.

    Shrinking the buffer to 1 KB forces spike re-reads and increases
    DRAM energy per image.
    """
    from repro.hw import HwConfig

    def run_small_buffer():
        proc = SNNProcessor(HwConfig(input_buffer_kb=1.0))
        return proc.run(vgg16_geometry(64, 200), MEASURED_VGG_PROFILE)

    small = benchmark.pedantic(run_small_buffer, rounds=1, iterations=1)
    big = reports["snn"]["tiny-imagenet"]
    assert small.traffic.spike_read_bits > big.traffic.spike_read_bits
    assert small.dram_energy_uj >= big.dram_energy_uj
    save_result(
        "table4_buffer_ablation",
        f"input-buffer ablation (Tiny-ImageNet): 48KB -> "
        f"{big.dram_energy_uj:.1f} uJ DRAM; 1KB -> "
        f"{small.dram_energy_uj:.1f} uJ DRAM",
    )

"""Fig. 4 — accuracy vs weight bit width for three log bases.

The paper sweeps post-training logarithmic quantisation of the CAT
VGG-16 over bit widths 4..8 for a_w in {2, 2^-1/2, 2^-1/4} at both
kernel points, and selects 5-bit / a_w = 2^-1/2 for the hardware.

Shape criteria: accuracy is (weakly) monotone in bit width for every
base; fp32 is the ceiling; the paper's selected base a_w = 2^-1/2
(z_w = 1) is at least as good as a_w = 2 (z_w = 0) at 5 bits.
"""

import numpy as np

from repro.analysis import format_series, paper
from repro.quant import accuracy_vs_bits

from conftest import save_result

BITS = paper.FIG4_BIT_WIDTHS  # (4, 5, 6, 7, 8)
BASE_LABELS = {0: "a_w=2", 1: "a_w=2^-1/2", 2: "a_w=2^-1/4"}


def test_fig4_quantization_sweep(benchmark, cat_full_snn, bench_c10):
    results = benchmark.pedantic(
        accuracy_vs_bits,
        args=(cat_full_snn, bench_c10.test_x, bench_c10.test_y),
        kwargs=dict(bit_widths=BITS, z_ws=(0, 1, 2)),
        rounds=1, iterations=1,
    )

    series = {BASE_LABELS[z]: [round(results[z][b], 3) for b in BITS]
              for z in (0, 1, 2)}
    series["fp32"] = [round(results["fp32"], 3)] * len(BITS)
    table = format_series(
        list(BITS), series,
        title=("Fig. 4 accuracy vs weight bit width "
               "(bench VGG-7, scaled T=12 tau=2; paper: VGG-16 CIFAR-100)"),
        x_label="bits")

    fp32 = results["fp32"]
    # fp32 ceiling (small tolerance: quantisation can't meaningfully win)
    for z in (0, 1, 2):
        for b in BITS:
            assert results[z][b] <= fp32 + 0.02
    # weak monotonicity in bits for each base (1 test-image tolerance)
    tol = 1.5 / len(bench_c10.test_y)
    for z in (0, 1, 2):
        accs = [results[z][b] for b in BITS]
        assert all(b >= a - tol for a, b in zip(accs, accs[1:])), (
            f"non-monotone for z_w={z}: {accs}")
    # the paper's selected base is not beaten by plain power-of-two at 5b
    assert results[1][5] >= results[0][5] - tol

    chosen = paper.FIG4_SELECTED
    summary = (f"paper selection: {chosen['bits']}b, a_w=2^-1/2 -> "
               f"measured acc {results[1][5]:.3f} "
               f"(fp32 ceiling {fp32:.3f})")
    save_result("fig4_logquant", f"{table}\n\n{summary}")


def test_fig4_second_panel_wider_kernel(benchmark, bench_c10):
    """Fig. 4(b): the same sweep at the wider kernel point (paper T=48,
    tau=8 -> bench 24/4).  Shape: same monotonicity and base ordering."""
    from repro.cat import convert
    from conftest import train_bench_model

    model, cfg = train_bench_model(bench_c10, "I+II+III", 24, 4.0, seed=13)
    snn = convert(model, cfg, calibration=bench_c10.train_x[:64])
    results = benchmark.pedantic(
        accuracy_vs_bits,
        args=(snn, bench_c10.test_x, bench_c10.test_y),
        kwargs=dict(bit_widths=BITS, z_ws=(0, 1, 2)),
        rounds=1, iterations=1,
    )
    series = {BASE_LABELS[z]: [round(results[z][b], 3) for b in BITS]
              for z in (0, 1, 2)}
    series["fp32"] = [round(results["fp32"], 3)] * len(BITS)
    table = format_series(list(BITS), series,
                          title="Fig. 4(b) accuracy vs bits (bench T=24, "
                                "tau=4; paper T=48, tau=8)", x_label="bits")
    save_result("fig4_logquant_panel_b", table)
    tol = 1.5 / len(bench_c10.test_y)
    for z in (0, 1, 2):
        accs = [results[z][b] for b in BITS]
        assert all(b >= a - tol for a, b in zip(accs, accs[1:]))
    assert results[1][5] >= results[0][5] - tol


def test_fig4_quant_error_vs_base(benchmark, cat_full_snn):
    """Mechanistic check: at 5 bits, a_w=2^-1/2 has the smallest weight
    MSE on the trained conv tensors, which is why the paper selects it."""
    from repro.quant import LogQuantConfig, quantization_error

    weights = [s.weight for s in cat_full_snn.weight_layers]

    def mse_by_base():
        return {z: float(np.mean([quantization_error(w, LogQuantConfig(5, z))
                                  for w in weights]))
                for z in (0, 1, 2)}

    errs = benchmark(mse_by_base)
    assert errs[1] < errs[0]
    save_result(
        "fig4_weight_mse",
        "5-bit weight-quantisation MSE by log base:\n" + "\n".join(
            f"  {BASE_LABELS[z]}: {errs[z]:.3e}" for z in (0, 1, 2)),
    )

"""Table 1 — accuracies (conversion losses) of the CAT components.

Paper: VGG-16 on CIFAR-10/100/Tiny-ImageNet, methods I / I+II / I+II+III
at (T, tau) in {48/8, 24/4, 12/2}.  Bench: VGG-7 on two synthetic
stand-ins at the 2x-scaled points {24/4, 12/2, 6/1}.

Shape criteria (per dataset and per (T, tau)):
* conversion loss shrinks monotonically I -> I+II -> I+II+III;
* for method I the loss grows as the window shrinks;
* the full method stays near-lossless at the largest window.
"""

import pytest

from repro.analysis import ConversionResult, format_table, paper
from repro.cat import conversion_loss, convert, evaluate

from conftest import SCALED_POINTS, save_result, train_bench_model

METHODS = ("I", "I+II", "I+II+III")


def _run_cell(dataset, method, window, tau):
    model, cfg = train_bench_model(dataset, method, window, tau, seed=9)
    ann = evaluate(model, dataset.test_x, dataset.test_y)
    snn = convert(model, cfg).accuracy(dataset.test_x, dataset.test_y)
    return ConversionResult(method=method, window=window, tau=tau,
                            dataset=dataset.name, ann_accuracy=ann,
                            snn_accuracy=snn)


@pytest.fixture(scope="module")
def ablation(bench_c10, bench_c100, bench_tin):
    """All 3 methods x 3 scaled (T, tau) x 3 datasets (27 training runs)."""
    cells = {}
    for dataset in (bench_c10, bench_c100, bench_tin):
        for paper_pt, (window, tau) in SCALED_POINTS.items():
            for method in METHODS:
                cells[(dataset.name, paper_pt, method)] = _run_cell(
                    dataset, method, window, tau)
    return cells


def test_table1_cat_ablation(benchmark, ablation, bench_c10, bench_c100,
                             bench_tin):
    # Time one representative cell; the sweep itself is fixture-cached.
    benchmark.pedantic(_run_cell, args=(bench_c10, "I", 6, 1.0),
                       rounds=1, iterations=1)

    headers = ["method", "paper T/tau", "bench T/tau", "dataset",
               "SNN acc %", "loss pp", "paper SNN acc %", "paper loss pp"]
    rows = []
    paper_ds = {"bench-cifar10": "cifar10", "bench-cifar100": "cifar100",
                "bench-tiny-imagenet": "tiny-imagenet"}
    for (ds_name, paper_pt, method), cell in sorted(ablation.items()):
        ref = paper.TABLE1[(method, paper_pt, paper_ds[ds_name])]
        rows.append([
            method, f"{paper_pt[0]}/{paper_pt[1]}",
            f"{cell.window}/{cell.tau:g}", ds_name,
            round(100 * cell.snn_accuracy, 2),
            round(cell.conversion_loss, 2),
            ref[0], ref[1],
        ])
    table = format_table(headers, rows,
                         title="Table 1: CAT ablation (bench scale)")
    save_result("table1_cat_ablation", table)

    # Shape criterion 1: monotone improvement I -> I+II -> I+II+III.
    tol = 2.5  # percentage points of run-to-run noise at bench scale
    for ds_name in paper_ds:
        for paper_pt in SCALED_POINTS:
            losses = [ablation[(ds_name, paper_pt, m)].conversion_loss
                      for m in METHODS]
            assert losses[0] <= losses[1] + tol, (ds_name, paper_pt, losses)
            assert losses[1] <= losses[2] + tol, (ds_name, paper_pt, losses)

    # Shape criterion 2: for method I, smaller window -> larger loss.
    for ds_name in paper_ds:
        seq = [ablation[(ds_name, pt, "I")].conversion_loss
               for pt in ((48, 8), (24, 4), (12, 2))]
        assert seq[2] <= seq[0] + tol, (ds_name, seq)

    # Shape criterion 3: full method near-lossless at the largest window.
    for ds_name in paper_ds:
        full = ablation[(ds_name, (48, 8), "I+II+III")]
        assert abs(full.conversion_loss) < 3.0, (ds_name,
                                                 full.conversion_loss)

#!/usr/bin/env python
"""Diff a fresh bench run against its committed repo-root baseline.

Each *suite* pins one performance story with a committed baseline at
the repo root whose **ratio** metrics cancel out absolute machine
speed, so they transfer across hosts far better than raw milliseconds:

* ``event_stream`` — the compiled-plan event path
  (``BENCH_event_stream.json``: ``speedup``, ``scatter_speedup``,
  ``auto_vs_best``);
* ``serve`` — the multi-process serving fleet (``BENCH_serve.json``:
  ``rps_vs_single``, requests/sec per worker count relative to one
  in-process session);
* ``train`` — the streaming training data path (``BENCH_train.json``:
  ``speedup`` per record — data-path images/sec vs the historical
  per-image loader, pool-backward kernels vs their old formulations,
  and peak-RSS ratio of in-memory over streamed training);
* ``obs`` — the observability layer (``BENCH_obs.json``:
  ``overhead_pct`` per record — telemetry cost as a percent of the
  work it instruments, floored at the bench's noise floor; lower is
  better).

This script compares those ratios record-by-record against the fresh
``benchmarks/results/<suite>.json`` and flags any that regressed
beyond a relative tolerance.

Usage::

    python benchmarks/compare.py                     # event_stream, strict
    python benchmarks/compare.py --suite serve       # the fleet suite
    python benchmarks/compare.py --warn-only         # CI: report only
    python benchmarks/compare.py --tolerance 0.4
    python benchmarks/compare.py --warn-only --fail-on-regress 60
                                  # CI: warn at the tolerance, but still
                                  # gate hard on >=60% regressions

Only regressions count — a fresh run that is *faster* than baseline
never fails.  Lower-is-better metrics (``auto_vs_best``) regress when
they grow.  Records present only in the fresh run (e.g. a 4-worker
fleet measurement the 1-core baseline host could not take) are
ignored; records missing from the fresh run are regressions.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "benchmarks" / "results"


def _event_stream_key(record: dict) -> tuple:
    return (record["scheme"], record["window"], record["input_density"])


def _serve_key(record: dict) -> tuple:
    return (record["mode"], record["workers"])


def _train_key(record: dict) -> tuple:
    return (record["case"],)


def _obs_key(record: dict) -> tuple:
    return (record["case"],)


#: suite name -> how to load and diff it.  ``metrics`` maps each ratio
#: metric to True when higher is better.
SUITES = {
    "event_stream": {
        "baseline": REPO_ROOT / "BENCH_event_stream.json",
        "fresh": RESULTS / "event_stream.json",
        "bench": "benchmarks/bench_event_stream.py",
        "schema_version": 2,
        "metrics": {
            "speedup": True,
            "scatter_speedup": True,
            "auto_vs_best": False,
        },
        "key": _event_stream_key,
    },
    "serve": {
        "baseline": REPO_ROOT / "BENCH_serve.json",
        "fresh": RESULTS / "serve.json",
        "bench": "benchmarks/bench_serve.py",
        "schema_version": 1,
        "metrics": {
            "rps_vs_single": True,
        },
        "key": _serve_key,
    },
    "train": {
        "baseline": REPO_ROOT / "BENCH_train.json",
        "fresh": RESULTS / "train.json",
        "bench": "benchmarks/bench_train.py",
        "schema_version": 1,
        "metrics": {
            "speedup": True,
        },
        "key": _train_key,
    },
    "obs": {
        "baseline": REPO_ROOT / "BENCH_obs.json",
        "fresh": RESULTS / "obs.json",
        "bench": "benchmarks/bench_obs.py",
        "schema_version": 1,
        "metrics": {
            "overhead_pct": False,
        },
        "key": _obs_key,
    },
}


def load(path: pathlib.Path, suite: dict) -> dict:
    if not path.exists():
        sys.exit(f"compare.py: {path} not found — run {suite['bench']} "
                 f"first (fresh run) or commit a baseline "
                 f"(see {suite['baseline'].name}).")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        sys.exit(f"compare.py: {path} is not valid JSON: {exc}")
    expected = suite["schema_version"]
    if data.get("schema_version") != expected:
        sys.exit(f"compare.py: {path} has schema_version "
                 f"{data.get('schema_version')!r}, expected {expected} — "
                 f"re-run the bench on this checkout.")
    return data


def compare(baseline: dict, fresh: dict, suite: dict,
            tolerance: float) -> list[str]:
    """Return a list of human-readable regression messages."""
    key_of = suite["key"]
    fresh_by_key = {key_of(r): r for r in fresh["records"]}
    problems = []
    for base in baseline["records"]:
        key = key_of(base)
        got = fresh_by_key.get(key)
        if got is None:
            problems.append(f"{key}: missing from fresh run")
            continue
        for metric, higher_is_better in suite["metrics"].items():
            base_v, got_v = base[metric], got[metric]
            if higher_is_better:
                floor = base_v * (1.0 - tolerance)
                if got_v < floor:
                    problems.append(
                        f"{key}: {metric} regressed {base_v:.2f} -> "
                        f"{got_v:.2f} (floor {floor:.2f} at "
                        f"tolerance {tolerance:.0%})")
            else:
                ceiling = base_v * (1.0 + tolerance)
                if got_v > ceiling:
                    problems.append(
                        f"{key}: {metric} regressed {base_v:.2f} -> "
                        f"{got_v:.2f} (ceiling {ceiling:.2f} at "
                        f"tolerance {tolerance:.0%})")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare a fresh bench run against its committed "
                    "repo-root baseline.")
    parser.add_argument("--suite", choices=sorted(SUITES),
                        default="event_stream",
                        help="which bench suite to diff "
                             "(default: event_stream)")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="committed baseline JSON "
                             "(default: the suite's repo-root file)")
    parser.add_argument("--fresh", type=pathlib.Path, default=None,
                        help="fresh run JSON "
                             "(default: the suite's benchmarks/results "
                             "file)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative slack on each ratio metric "
                             "(default: 0.25 — bench hosts are noisy)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (CI mode)")
    parser.add_argument("--fail-on-regress", type=float, default=None,
                        metavar="PCT",
                        help="hard gate: exit 1 when any metric regresses "
                             "by PCT percent or more, even under "
                             "--warn-only (warnings keep using "
                             "--tolerance)")
    args = parser.parse_args(argv)
    if args.fail_on_regress is not None and args.fail_on_regress <= 0:
        parser.error("--fail-on-regress must be a positive percentage")

    suite = SUITES[args.suite]
    baseline_path = args.baseline or suite["baseline"]
    fresh_path = args.fresh or suite["fresh"]
    baseline = load(baseline_path, suite)
    fresh = load(fresh_path, suite)
    problems = compare(baseline, fresh, suite, args.tolerance)

    n = len(baseline["records"]) * len(suite["metrics"])
    if problems:
        print(f"compare.py: {len(problems)} regression(s) against "
              f"{baseline_path.name} (tolerance {args.tolerance:.0%}):")
        for p in problems:
            print(f"  - {p}")
        if args.fail_on_regress is not None:
            gated = compare(baseline, fresh, suite,
                            args.fail_on_regress / 100.0)
            if gated:
                print(f"compare.py: {len(gated)} exceed the "
                      f"--fail-on-regress {args.fail_on_regress:g}% gate "
                      "— failing")
                return 1
        return 0 if args.warn_only else 1
    print(f"compare.py: all {n} {args.suite} ratio checks within "
          f"{args.tolerance:.0%} of {baseline_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Diff a fresh event-stream bench run against the committed baseline.

The committed ``BENCH_event_stream.json`` at the repo root pins the
performance story of the compiled-plan event path: its *ratio* metrics
(``speedup``, ``scatter_speedup``, ``auto_vs_best``) cancel out absolute
machine speed, so they transfer across hosts far better than raw
milliseconds.  This script compares those ratios record-by-record
against a fresh ``benchmarks/results/event_stream.json`` and flags any
that regressed beyond a relative tolerance.

Usage::

    python benchmarks/compare.py                     # strict: exit 1
    python benchmarks/compare.py --warn-only         # CI: report only
    python benchmarks/compare.py --tolerance 0.4

Only regressions count — a fresh run that is *faster* than baseline
never fails.  ``auto_vs_best`` is the one lower-is-better metric; it
regresses when it grows.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_event_stream.json"
FRESH = REPO_ROOT / "benchmarks" / "results" / "event_stream.json"

#: metric name -> True when higher is better.
RATIO_METRICS = {
    "speedup": True,
    "scatter_speedup": True,
    "auto_vs_best": False,
}


def load(path: pathlib.Path) -> dict:
    if not path.exists():
        sys.exit(f"compare.py: {path} not found — run "
                 f"benchmarks/bench_event_stream.py first (fresh run) or "
                 f"commit a baseline (see BENCH_event_stream.json).")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        sys.exit(f"compare.py: {path} is not valid JSON: {exc}")
    if data.get("schema_version") != 2:
        sys.exit(f"compare.py: {path} has schema_version "
                 f"{data.get('schema_version')!r}, expected 2 — "
                 f"re-run the bench on this checkout.")
    return data


def record_key(record: dict) -> tuple:
    return (record["scheme"], record["window"], record["input_density"])


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Return a list of human-readable regression messages."""
    fresh_by_key = {record_key(r): r for r in fresh["records"]}
    problems = []
    for base in baseline["records"]:
        key = record_key(base)
        got = fresh_by_key.get(key)
        if got is None:
            problems.append(f"{key}: missing from fresh run")
            continue
        for metric, higher_is_better in RATIO_METRICS.items():
            base_v, got_v = base[metric], got[metric]
            if higher_is_better:
                floor = base_v * (1.0 - tolerance)
                if got_v < floor:
                    problems.append(
                        f"{key}: {metric} regressed {base_v:.2f} -> "
                        f"{got_v:.2f} (floor {floor:.2f} at "
                        f"tolerance {tolerance:.0%})")
            else:
                ceiling = base_v * (1.0 + tolerance)
                if got_v > ceiling:
                    problems.append(
                        f"{key}: {metric} regressed {base_v:.2f} -> "
                        f"{got_v:.2f} (ceiling {ceiling:.2f} at "
                        f"tolerance {tolerance:.0%})")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare a fresh event-stream bench run against the "
                    "committed BENCH_event_stream.json baseline.")
    parser.add_argument("--baseline", type=pathlib.Path, default=BASELINE,
                        help="committed baseline JSON (default: repo root)")
    parser.add_argument("--fresh", type=pathlib.Path, default=FRESH,
                        help="fresh run JSON (default: benchmarks/results)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative slack on each ratio metric "
                             "(default: 0.25 — bench hosts are noisy)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (CI mode)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    problems = compare(baseline, fresh, args.tolerance)

    n = len(baseline["records"]) * len(RATIO_METRICS)
    if problems:
        print(f"compare.py: {len(problems)} regression(s) against "
              f"{args.baseline.name} (tolerance {args.tolerance:.0%}):")
        for p in problems:
            print(f"  - {p}")
        return 0 if args.warn_only else 1
    print(f"compare.py: all {n} ratio checks within "
          f"{args.tolerance:.0%} of {args.baseline.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

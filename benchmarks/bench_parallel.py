"""Process-parallel sharded runner vs serial — parity, speedup, cache.

Three claims, one bench:

* **Parity** — ``ParallelRunner`` (worker processes rebuilding the
  scheme from a picklable spec) is *bit-identical* to the serial
  ``PipelineRunner`` on a 64-image micro-VGG batch: same outputs, same
  predictions, same spike/SOP totals.
* **Speedup** — sharding the chunks of a compute-bound workload
  (timestep-mode TTFS over VGG-7) across 4 workers buys >= 1.8x
  wall-clock over serial.  Asserted only where the hardware can deliver
  it (>= 4 CPUs); single-core runners still record the measurement.
* **Caching** — re-running the same batch through a result cache
  executes nothing: 100% hits, and the replay beats recomputation.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis import format_table
from repro.cat import CATConfig, convert
from repro.engine import (
    ParallelRunner,
    PipelineRunner,
    ResultCache,
    SchemeSpec,
    create_scheme,
)
from repro.nn import init as nninit, vgg7, vgg_micro

from conftest import save_result

ROUNDS = 3
SPEEDUP_WORKERS = 4
SPEEDUP_FLOOR = 1.8


def _build_snn(builder, size: int, window: int, tau: float):
    nninit.seed(11)
    model = builder(num_classes=6, input_size=size)
    return convert(model, CATConfig(window=window, tau=tau,
                                    method="I+II+III"))


def _best(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_parallel_bit_identical_on_micro_vgg(tmp_path):
    """64-image micro-VGG batch: parallel == serial, bit for bit."""
    snn = _build_snn(vgg_micro, 8, 12, 2.0)
    images = np.random.default_rng(0).random((64, 3, 8, 8))
    serial = PipelineRunner(create_scheme("ttfs-closed-form", snn),
                            max_batch=16).run(images)
    with ParallelRunner(SchemeSpec("ttfs-closed-form", snn), max_batch=16,
                        workers=2) as runner:
        parallel = runner.run(images)
    assert np.array_equal(serial.output, parallel.output)
    assert np.array_equal(serial.predictions(), parallel.predictions())
    assert serial.total_spikes == parallel.total_spikes
    assert serial.total_sops == parallel.total_sops


def test_parallel_speedup_and_cache_replay():
    snn = _build_snn(vgg7, 16, 24, 4.0)
    images = np.random.default_rng(0).random((64, 3, 16, 16))
    spec = SchemeSpec("ttfs-timestep", snn)  # compute-bound per chunk

    serial_runner = PipelineRunner(create_scheme("ttfs-timestep", snn),
                                   max_batch=8)
    t_serial = _best(lambda: serial_runner.run(images))

    with ParallelRunner(spec, max_batch=8,
                        workers=SPEEDUP_WORKERS) as runner:
        runner.run(images)  # warm the pool outside the timed region
        t_parallel = _best(lambda: runner.run(images))

    import tempfile
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        with ParallelRunner(spec, max_batch=8, workers=1,
                            cache=cache) as runner:
            runner.run(images)  # populate
            assert cache.misses == 8 and cache.hits == 0
            t_cached = _best(lambda: runner.run(images))
            assert cache.misses == 8  # every repeat was a pure replay

    speedup = t_serial / t_parallel
    cores = os.cpu_count() or 1
    rows = [
        ["serial (1 core)", round(1e3 * t_serial, 1), 1.0],
        [f"parallel ({SPEEDUP_WORKERS} workers)",
         round(1e3 * t_parallel, 1), round(speedup, 2)],
        ["cache replay", round(1e3 * t_cached, 1),
         round(t_serial / t_cached, 2)],
    ]
    table = format_table(
        ["configuration", "64-img batch (ms)", "speedup"],
        rows, title=f"ttfs-timestep VGG-7 16x16, {cores} CPU(s) visible")
    save_result("parallel_runner", table + (
        "\n\nChunks are independent (pure function of weights, config, "
        "inputs), so the parallel runner shards them across a process "
        "pool; the content-addressed cache replays repeated runs "
        "without executing any chunk."))

    # Replay must always beat recomputation, wherever this runs.
    assert t_cached < t_serial, (t_cached, t_serial)
    # The speedup claim needs the cores to exist; a 1-core container
    # cannot parallelise and only measures the sharding overhead.  On
    # shared CI runners the reported vCPUs oversubscribe physical
    # cores, so only a loose floor is load-independent there.
    floor = 1.2 if os.environ.get("CI") else SPEEDUP_FLOOR
    if cores >= SPEEDUP_WORKERS:
        assert speedup >= floor, rows

"""Serving fleet throughput: WorkerPool vs one in-process session.

The fleet claim of the serving layer, measured end to end: concurrent
clients submitting single-image requests through the micro-batching
submit path, against

* an **in-process** reference — one ``InferenceSession`` behind one
  ``MicroBatcher`` (exactly ``repro serve`` with ``--workers 0``), and
* a **fleet** — ``WorkerPool`` with 1, 2 (and, where the cores exist,
  4) session processes sharing one mmap'd bundle copy.

Three claims, one bench:

* **Parity** — fleet predictions are bit-identical to the single
  session's, spikes and SOPs included.
* **Throughput** — on a >= 4-core host, the 4-worker fleet clears
  2x the in-process requests/sec (CI runners get a looser floor; a
  1-core container only records the measurement, it cannot honestly
  assert a parallel speedup).
* **Tail latency** — per-request p50/p99 are recorded per
  configuration, so regressions in the batching/admission path show
  up as latency, not just rps.

Writes ``benchmarks/results/serve.txt`` (human table) and
``benchmarks/results/serve.json`` (machine-readable; diffed against
the committed ``BENCH_serve.json`` by ``compare.py --suite serve``).
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np

from repro.analysis import format_table
from repro.cat import CATConfig, convert
from repro.nn import init as nninit, vgg_micro
from repro.serve import (
    InferenceSession,
    MicroBatcher,
    ModelArtifact,
    SessionSpec,
    WorkerPool,
)

from conftest import RESULTS_DIR, save_result

#: Single-image requests per timed round, spread over CLIENTS threads.
REQUESTS = 64
CLIENTS = 8
MAX_BATCH = 8
ROUNDS = 2
SPEEDUP_WORKERS = 4
SPEEDUP_FLOOR = 2.0


def _build_bundle(path):
    """A served bundle around a seeded (untrained) micro VGG.

    Accuracy is irrelevant to a throughput bench; the timestep scheme
    makes each dispatch compute-bound enough that process parallelism,
    not queue overhead, is what the numbers measure.
    """
    nninit.seed(7)
    model = vgg_micro(num_classes=6, input_size=16)
    snn = convert(model, CATConfig(window=24, tau=4.0, method="I+II+III"))
    return ModelArtifact.save(
        path, snn, name="bench-serve", scheme="ttfs-timestep",
        backend="dense", max_batch=MAX_BATCH, input_shape=(3, 16, 16))


def _drive(submit, images):
    """Hammer ``submit`` from CLIENTS threads; (rps, p50_ms, p99_ms)."""
    latencies = []
    lock = threading.Lock()

    def client(chunk):
        for image in chunk:
            t0 = time.perf_counter()
            future = submit(image)
            future.result(timeout=600)
            dt = time.perf_counter() - t0
            with lock:
                latencies.append(dt)

    chunks = np.array_split(images, CLIENTS)
    threads = [threading.Thread(target=client, args=(chunk,))
               for chunk in chunks if len(chunk)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    latencies_ms = np.sort(np.asarray(latencies)) * 1e3
    return (len(images) / wall,
            float(np.percentile(latencies_ms, 50)),
            float(np.percentile(latencies_ms, 99)))


def _best_drive(submit, images):
    """Best-of-ROUNDS rps (and its latency percentiles)."""
    best = (0.0, float("inf"), float("inf"))
    for _ in range(ROUNDS):
        measured = _drive(submit, images)
        if measured[0] > best[0]:
            best = measured
    return best


def test_serve_fleet_throughput(tmp_path):
    bundle = _build_bundle(tmp_path / "bundle")
    images = np.random.default_rng(0).random((REQUESTS, 3, 16, 16))
    cores = os.cpu_count() or 1
    worker_counts = [1, 2] + ([SPEEDUP_WORKERS]
                              if cores >= SPEEDUP_WORKERS else [])

    # -- in-process reference (repro serve --workers 0) ----------------
    session = InferenceSession(bundle.path)
    reference = session.predict(images[:16])
    with MicroBatcher(session.predict, MAX_BATCH,
                      max_wait_s=0.002) as batcher:
        batcher.submit(images[0]).result(timeout=600)      # warm
        single_rps, single_p50, single_p99 = _best_drive(
            batcher.submit, images)

    records = [{"mode": "in-process", "workers": 0,
                "rps": round(single_rps, 2),
                "p50_ms": round(single_p50, 2),
                "p99_ms": round(single_p99, 2),
                "rps_vs_single": 1.0}]

    # -- the fleet -----------------------------------------------------
    spec = SessionSpec(str(bundle.path), mmap=True)
    for workers in worker_counts:
        with WorkerPool(spec, workers=workers,
                        batch_wait_s=0.002) as pool:
            # fleet parity first: same bits as the in-process session
            pooled = pool.predict(images[:16])
            np.testing.assert_array_equal(pooled.predictions,
                                          reference.predictions)
            assert pooled.total_spikes == reference.total_spikes
            assert pooled.total_sops == reference.total_sops

            pool.submit(images[0]).result(timeout=600)     # warm
            rps, p50, p99 = _best_drive(pool.submit, images)
        records.append({"mode": "fleet", "workers": workers,
                        "rps": round(rps, 2),
                        "p50_ms": round(p50, 2),
                        "p99_ms": round(p99, 2),
                        "rps_vs_single": round(rps / single_rps, 2)})

    rows = [[f"{r['mode']} ({r['workers']} worker(s))" if r["workers"]
             else "in-process session", r["rps"], r["p50_ms"],
             r["p99_ms"], r["rps_vs_single"]] for r in records]
    table = format_table(
        ["configuration", "req/s", "p50 (ms)", "p99 (ms)", "vs single"],
        rows,
        title=f"serving fleet, {REQUESTS} reqs x {CLIENTS} clients, "
              f"{cores} CPU(s) visible")
    save_result("serve", table + (
        "\n\nEach fleet worker is a separate process over one mmap'd "
        "bundle copy, behind its own micro-batcher; requests route to "
        "the least-loaded batcher.  Predictions are asserted "
        "bit-identical to the in-process session."))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serve.json").write_text(json.dumps(
        {"schema_version": 1, "requests": REQUESTS, "clients": CLIENTS,
         "max_batch": MAX_BATCH, "rounds": ROUNDS, "cores": cores,
         "records": records}, indent=2) + "\n")

    # A 1-core container cannot parallelise; it records honest numbers
    # but only a host with the cores can carry the speedup claim.  CI
    # runners oversubscribe vCPUs, so the floor is looser there.
    if cores >= SPEEDUP_WORKERS:
        floor = 1.2 if os.environ.get("CI") else SPEEDUP_FLOOR
        best = max(r["rps_vs_single"] for r in records[1:])
        assert best >= floor, records

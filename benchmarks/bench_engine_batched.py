"""Batched engine runner vs per-image looping — the batching payoff.

The chip processes one inference at a time, but the simulator does not
have to: the engine's :class:`~repro.engine.PipelineRunner` chunks a
batch through the shared layer walk, amortising the per-layer Python and
im2col overhead over every image in the chunk.  This bench measures
single-image vs chunked-batch throughput of the closed-form TTFS scheme
on a 64-image batch and asserts the batched walk is at least 2x faster
(the margin grows as the per-image compute shrinks — the micro workload
shows the overhead-dominated regime).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table
from repro.cat import CATConfig, convert
from repro.engine import PipelineRunner
from repro.nn import init as nninit, vgg7, vgg_micro
from repro.snn import EventDrivenTTFSNetwork

from conftest import save_result

BATCH = 64
ROUNDS = 3
WORKLOADS = (("vgg_micro 8x8", vgg_micro, 8), ("vgg7 16x16", vgg7, 16))


def _best_throughput(runner: PipelineRunner, images: np.ndarray) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        runner.run(images)
        best = min(best, time.perf_counter() - t0)
    return len(images) / best


def test_batched_runner_throughput():
    rows = []
    speedups = {}
    for label, builder, size in WORKLOADS:
        nninit.seed(11)
        model = builder(num_classes=6, input_size=size)
        cfg = CATConfig(window=12, tau=2.0, method="I+II+III")
        snn = convert(model, cfg)  # weights untrained: throughput only
        rng = np.random.default_rng(0)
        images = rng.random((BATCH, 3, size, size))

        scheme = EventDrivenTTFSNetwork(snn, mode="closed_form")
        per_image = _best_throughput(PipelineRunner(scheme, max_batch=1),
                                     images)
        batched = _best_throughput(PipelineRunner(scheme, max_batch=BATCH),
                                   images)
        speedups[label] = batched / per_image
        rows.append([label, round(per_image, 1), round(batched, 1),
                     round(batched / per_image, 2)])

    table = format_table(
        ["workload", "per-image img/s", f"batch-{BATCH} img/s", "speedup"],
        rows, title=f"engine runner throughput, {BATCH}-image batch "
                    "(ttfs-closed-form)")
    save_result("engine_batched", table + (
        "\n\nOne batched layer walk amortises the per-layer Python and "
        "im2col overhead across the whole chunk; per-image looping pays "
        f"it {BATCH} times."))

    # Shape criteria: batching must buy >= 2x on a 64-image batch in the
    # overhead-dominated regime (observed ~6x locally, so the bound holds
    # on noisy shared CI runners too), and never slow the larger net down.
    assert speedups["vgg_micro 8x8"] >= 2.0, speedups
    assert speedups["vgg7 16x16"] >= 1.0, speedups

"""Table 2 — comparison with T2FSNN [4].

Paper columns: T2FSNN (base e, T=80, tau=20, early firing, latency 680)
vs this work at base e (T=80: latency 1360) and base 2 (T=48: 816,
T=24: 408), with CAT winning accuracy everywhere and winning latency
once T <= 24.

Bench: latencies are exact VGG-16 formulas (17 pipeline stages);
accuracies are measured on VGG-7 at 2x-scaled coding points.
"""

import math

import pytest

from repro.analysis import format_table, latency_timesteps, paper
from repro.cat import convert
from repro.snn import T2FSNNConfig, convert_t2fsnn

from conftest import save_result, train_bench_model

VGG16_LAYERS = 16


@pytest.fixture(scope="module")
def systems(bench_c10):
    """Train the four Table 2 design points at bench scale."""
    out = {}

    # Baseline: conventionally-trained ANN + T2FSNN conversion w/ early
    # firing and post-conversion kernel optimisation (base e, scaled
    # T=40, tau=10 from the paper's 80/20).
    relu_model, _ = train_bench_model(bench_c10, "I", 40, 10.0, seed=11)
    t2 = convert_t2fsnn(relu_model,
                        T2FSNNConfig(window=40, tau=10.0, early_firing=True,
                                     optimizer_iters=40),
                        bench_c10.train_x[:64])
    out["t2fsnn"] = t2.accuracy(bench_c10.test_x, bench_c10.test_y)

    # This work, base e (scaled T=40, tau=10).
    model_e, cfg_e = train_bench_model(bench_c10, "I+II+III", 40, 10.0,
                                       seed=11, base=math.e)
    out["cat_base_e"] = convert(model_e, cfg_e).accuracy(
        bench_c10.test_x, bench_c10.test_y)

    # This work, base 2 at scaled (48, 8) -> (24, 4) and (24, 4) -> (12, 2).
    model_48, cfg_48 = train_bench_model(bench_c10, "I+II+III", 24, 4.0,
                                         seed=11)
    out["cat_48_8"] = convert(model_48, cfg_48).accuracy(
        bench_c10.test_x, bench_c10.test_y)
    model_24, cfg_24 = train_bench_model(bench_c10, "I+II+III", 12, 2.0,
                                         seed=11)
    out["cat_24_4"] = convert(model_24, cfg_24).accuracy(
        bench_c10.test_x, bench_c10.test_y)
    return out


def test_table2_t2fsnn_comparison(benchmark, systems):
    benchmark.pedantic(latency_timesteps, args=(VGG16_LAYERS, 24),
                       rounds=3, iterations=100)

    latencies = {
        "t2fsnn": latency_timesteps(VGG16_LAYERS, 80, early_firing=True),
        "cat_base_e": latency_timesteps(VGG16_LAYERS, 80),
        "cat_48_8": latency_timesteps(VGG16_LAYERS, 48),
        "cat_24_4": latency_timesteps(VGG16_LAYERS, 24),
    }
    headers = ["system", "base", "paper T/tau", "latency (VGG-16)",
               "paper latency", "bench acc %", "paper CIFAR-10 acc %"]
    paper_rows = paper.TABLE2
    rows = [
        ["T2FSNN [4]", "e", "80/20", latencies["t2fsnn"],
         paper_rows[0]["latency"], round(100 * systems["t2fsnn"], 2),
         paper_rows[0]["cifar10"]],
        ["This work", "e", "80/20", latencies["cat_base_e"],
         paper_rows[1]["latency"], round(100 * systems["cat_base_e"], 2),
         paper_rows[1]["cifar10"]],
        ["This work", "2", "48/8", latencies["cat_48_8"],
         paper_rows[2]["latency"], round(100 * systems["cat_48_8"], 2),
         paper_rows[2]["cifar10"]],
        ["This work", "2", "24/4", latencies["cat_24_4"],
         paper_rows[3]["latency"], round(100 * systems["cat_24_4"], 2),
         paper_rows[3]["cifar10"]],
    ]
    table = format_table(headers, rows,
                         title="Table 2: comparison with T2FSNN")
    save_result("table2_t2fsnn", table)

    # Latencies are exact reproductions of the paper's formula.
    assert latencies["t2fsnn"] == 680
    assert latencies["cat_base_e"] == 1360
    assert latencies["cat_48_8"] == 816
    assert latencies["cat_24_4"] == 408

    # Accuracy shape: CAT >= T2FSNN at every design point (paper: higher
    # accuracy in all cases); 2.5pp bench noise tolerance.
    for key in ("cat_base_e", "cat_48_8", "cat_24_4"):
        assert systems[key] >= systems["t2fsnn"] - 0.025, (key, systems)

    # Latency crossover: ours wins once T <= 24 despite no early firing.
    assert latencies["cat_24_4"] < latencies["t2fsnn"]
    assert latencies["cat_base_e"] > latencies["t2fsnn"]

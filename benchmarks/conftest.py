"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's
evaluation at CPU scale: VGG-7 (same block structure as VGG-16) on
16x16 synthetic datasets, with coding windows scaled 2x down from the
paper's (T, tau) pairs.  Absolute accuracies differ from the paper;
every bench prints a paper-vs-measured table and asserts the *shape*
criteria listed in DESIGN.md.

Each bench writes its rendered table to ``benchmarks/results/<id>.txt``
so EXPERIMENTS.md can be cross-checked mechanically.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.cat import CATConfig, convert, train_cat
from repro.data import make_dataset
from repro.nn import init as nninit, vgg7

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Scaled coding design points: paper (T, tau) -> bench (T, tau).
#: The paper keeps T/tau = 6 octaves and varies the per-octave
#: resolution tau; the bench halves both, preserving that structure.
SCALED_POINTS = {
    (48, 8): (24, 4.0),
    (24, 4): (12, 2.0),
    (12, 2): (6, 1.0),
}

#: Bench training schedule (compressed from 200 epochs to 10, keeping
#: relu warm-up ~5%, TTFS switch after the last LR drop).
BENCH_EPOCHS = 10
BENCH_SCHEDULE = dict(
    epochs=BENCH_EPOCHS, relu_epochs=1, ttfs_epoch=8,
    lr=0.05, milestones=(5, 7, 8), batch_size=40, augment=False,
)


def bench_config(method: str = "I+II+III", window: int = 12,
                 tau: float = 2.0, **overrides) -> CATConfig:
    kwargs = dict(BENCH_SCHEDULE)
    kwargs.update(overrides)
    return CATConfig(window=window, tau=tau, method=method, **kwargs)


def train_bench_model(dataset, method: str, window: int, tau: float,
                      seed: int = 1, **overrides):
    """Train a VGG-7 with the scaled CAT recipe; returns (model, config)."""
    nninit.seed(seed)
    model = vgg7(num_classes=dataset.num_classes, input_size=16)
    cfg = bench_config(method=method, window=window, tau=tau, **overrides)
    train_cat(model, dataset, cfg)
    return model, cfg


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def bench_c10():
    """CIFAR-10 stand-in at bench scale (6 classes, 16x16)."""
    return make_dataset(6, 16, train_per_class=60, test_per_class=30,
                        seed=2022, noise_std=0.55, name="bench-cifar10")


@pytest.fixture(scope="session")
def bench_c100():
    """CIFAR-100 stand-in: more classes, fewer samples per class."""
    return make_dataset(12, 16, train_per_class=30, test_per_class=15,
                        seed=2122, noise_std=0.55, name="bench-cifar100")


@pytest.fixture(scope="session")
def bench_tin():
    """Tiny-ImageNet stand-in: more classes again, fewer samples."""
    return make_dataset(16, 16, train_per_class=24, test_per_class=10,
                        seed=2222, noise_std=0.55,
                        name="bench-tiny-imagenet")


@pytest.fixture(scope="session")
def cat_full_model(bench_c10):
    """The hardware design point analogue: I+II+III at scaled (24, 4)."""
    model, cfg = train_bench_model(bench_c10, "I+II+III", 12, 2.0)
    return model, cfg


@pytest.fixture(scope="session")
def cat_full_snn(cat_full_model, bench_c10):
    model, cfg = cat_full_model
    return convert(model, cfg, calibration=bench_c10.train_x[:64])

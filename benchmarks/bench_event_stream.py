"""Dense vs event backend — the sparsity payoff of the EventStream core.

The dense `ttfs-timestep` walk integrates a full activation volume at
every timestep, so its cost is O(T x neurons) no matter how sparse the
network's activity is.  The event backend scatters only the spikes that
occurred (O(events x fan-out)), which is exactly what the processor's
sorted-spike streaming exploits.  This bench runs the micro-VGG at the
paper-relevant windows (T=16 and the T2FSNN-scale T=80) across input
sparsity levels, reports both backends' wall-clock, and asserts the
shape criteria: the event backend must beat dense on the high-sparsity
T=80 configuration, and both backends must agree on spike counts.

Results go to ``benchmarks/results/event_stream.txt`` (rendered table)
and ``benchmarks/results/event_stream.json`` (machine-readable, the CI
artifact).
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.analysis import format_table
from repro.cat import CATConfig, convert
from repro.engine import create_scheme
from repro.nn import init as nninit, vgg_micro

from conftest import RESULTS_DIR, save_result

BATCH = 32
ROUNDS = 3
SCHEME = "ttfs-timestep"
#: (window, tau) design points: the bench-scale paper window and the
#: T2FSNN baseline scale (Table 2's T=80).
WINDOWS = ((16, 4.0), (80, 16.0))
#: Fraction of input pixels left nonzero (spike density knob).
DENSITIES = (1.0, 0.25, 0.05)


def _best_seconds(scheme, images: np.ndarray) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        scheme.run(images)
        best = min(best, time.perf_counter() - t0)
    return best


def test_event_backend_sparsity_speedup():
    nninit.seed(11)
    model = vgg_micro(num_classes=6, input_size=8)
    rng = np.random.default_rng(0)
    base_images = rng.random((BATCH, 3, 8, 8))

    rows = []
    records = []
    for window, tau in WINDOWS:
        snn = convert(model, CATConfig(window=window, tau=tau,
                                       method="I+II+III"))
        for density in DENSITIES:
            images = base_images * (rng.random(base_images.shape) < density)
            dense_scheme = create_scheme(SCHEME, snn, backend="dense")
            event_scheme = create_scheme(SCHEME, snn, backend="event")
            dense_s = _best_seconds(dense_scheme, images)
            event_s = _best_seconds(event_scheme, images)
            dense_run = dense_scheme.run(images)
            event_run = event_scheme.run(images)
            # the backends must tell the same physical story
            assert dense_run.total_spikes == event_run.total_spikes
            assert dense_run.total_sops == event_run.total_sops
            record = {
                "scheme": SCHEME,
                "window": window,
                "tau": tau,
                "input_density": density,
                "total_spikes": int(dense_run.total_spikes),
                "spike_sparsity": round(1.0 - dense_run.total_spikes / sum(
                    t.neurons for t in dense_run.traces), 4),
                "dense_ms": round(1e3 * dense_s, 2),
                "event_ms": round(1e3 * event_s, 2),
                "speedup": round(dense_s / event_s, 2),
            }
            records.append(record)
            rows.append([f"T={window}", density,
                         record["total_spikes"], record["dense_ms"],
                         record["event_ms"], record["speedup"]])

    table = format_table(
        ["window", "input density", "spikes", "dense ms", "event ms",
         "event speedup"],
        rows, title=f"dense vs event backend, {SCHEME}, "
                    f"{BATCH}-image micro-VGG batch")
    save_result("event_stream", table + (
        "\n\nThe dense walk pays O(T x neurons) per layer regardless of "
        "activity; the event scatter pays O(events x fan-out), so the "
        "gap widens with the window and with sparsity — the regime the "
        "paper's one-spike coding and sorted-spike hardware live in."))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "event_stream.json").write_text(
        json.dumps({"schema_version": 1, "batch": BATCH,
                    "rounds": ROUNDS, "records": records}, indent=2) + "\n")

    by_key = {(r["window"], r["input_density"]): r for r in records}
    # Shape criteria: at the T2FSNN-scale window the event backend must
    # win outright on the sparse configuration (observed ~4x locally;
    # 1.5x holds on noisy shared CI runners) and must never lose badly
    # anywhere at T=80 (observed ~2x even fully dense).
    assert by_key[(80, 0.05)]["speedup"] >= 1.5, by_key[(80, 0.05)]
    assert by_key[(80, 1.0)]["speedup"] >= 1.0, by_key[(80, 1.0)]

"""Dense vs event vs auto backends — plans, segment-sum, adaptivity.

The dense `ttfs-timestep` walk integrates a full activation volume at
every timestep, so its cost is O(T x neurons) no matter how sparse the
network's activity is.  The event backend scatters only the spikes that
occurred (O(events x fan-out)), which is exactly what the processor's
sorted-spike streaming exploits.  This bench runs the micro-VGG at the
paper-relevant windows (T=16 and the T2FSNN-scale T=80) across input
sparsity levels and times four variants:

``dense``    the dense per-timestep walk;
``scatter``  the event backend's historical hot path (per-batch
             geometry + ``np.add.at``, via
             :func:`~repro.engine.executor.integrate_events_reference`);
``event``    the event backend on compiled plans + segment-sum kernels;
``auto``     per-layer dense/event selection against the calibrated
             crossover, plans precompiled.

Shape criteria asserted: the plan+segment-sum path must beat the old
scatter on the sparse T=80 workload, ``auto`` must never (modulo timer
noise) lose to the better of dense/event anywhere, and every variant
must tell the same physical story (spike counts, SOPs, predictions).

Results go to ``benchmarks/results/event_stream.txt`` (rendered table)
and ``benchmarks/results/event_stream.json`` (machine-readable, the CI
artifact — diffed against the committed ``BENCH_event_stream.json``
baseline by ``benchmarks/compare.py``).
"""

from __future__ import annotations

import json
import time
from unittest import mock

import numpy as np

from repro.analysis import format_table
from repro.cat import CATConfig, convert
from repro.engine import compile_plans, create_scheme, executor
from repro.nn import init as nninit, vgg_micro

from conftest import RESULTS_DIR, save_result

BATCH = 32
ROUNDS = 3
SCHEME = "ttfs-timestep"
#: (window, tau) design points: the bench-scale paper window and the
#: T2FSNN baseline scale (Table 2's T=80).
WINDOWS = ((16, 4.0), (80, 16.0))
#: Fraction of input pixels left nonzero (spike density knob).
DENSITIES = (1.0, 0.25, 0.05)
#: Timer-noise allowance on the auto-vs-best comparison (single-digit
#: millisecond runs on shared runners jitter by more than this).
AUTO_TOLERANCE = 1.15


def _best_seconds(scheme, images: np.ndarray) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        scheme.run(images)
        best = min(best, time.perf_counter() - t0)
    return best


def test_event_backend_sparsity_speedup():
    nninit.seed(11)
    model = vgg_micro(num_classes=6, input_size=8)
    rng = np.random.default_rng(0)
    base_images = rng.random((BATCH, 3, 8, 8))

    rows = []
    records = []
    for window, tau in WINDOWS:
        snn = convert(model, CATConfig(window=window, tau=tau,
                                       method="I+II+III"))
        plans = compile_plans(snn, (3, 8, 8))
        for density in DENSITIES:
            images = base_images * (rng.random(base_images.shape) < density)
            dense_scheme = create_scheme(SCHEME, snn, backend="dense")
            event_scheme = create_scheme(SCHEME, snn, backend="event",
                                         plans=plans)
            auto_scheme = create_scheme(SCHEME, snn, backend="auto",
                                        plans=plans)
            scatter_scheme = create_scheme(SCHEME, snn, backend="event")
            dense_s = _best_seconds(dense_scheme, images)
            with mock.patch.object(executor, "integrate_events",
                                   executor.integrate_events_reference):
                scatter_s = _best_seconds(scatter_scheme, images)
            event_s = _best_seconds(event_scheme, images)
            auto_s = _best_seconds(auto_scheme, images)
            dense_run = dense_scheme.run(images)
            event_run = event_scheme.run(images)
            auto_run = auto_scheme.run(images)
            # every variant must tell the same physical story
            for run in (event_run, auto_run):
                assert dense_run.total_spikes == run.total_spikes
                assert dense_run.total_sops == run.total_sops
                assert np.array_equal(dense_run.predictions(),
                                      run.predictions())
            record = {
                "scheme": SCHEME,
                "window": window,
                "tau": tau,
                "input_density": density,
                "total_spikes": int(dense_run.total_spikes),
                "spike_sparsity": round(1.0 - dense_run.total_spikes / sum(
                    t.neurons for t in dense_run.traces), 4),
                "dense_ms": round(1e3 * dense_s, 2),
                "scatter_ms": round(1e3 * scatter_s, 2),
                "event_ms": round(1e3 * event_s, 2),
                "auto_ms": round(1e3 * auto_s, 2),
                "speedup": round(dense_s / event_s, 2),
                "scatter_speedup": round(scatter_s / event_s, 2),
                "auto_vs_best": round(auto_s / min(dense_s, event_s), 2),
                "auto_backends": sorted({t.backend for t in auto_run.traces
                                         if t.backend is not None}),
            }
            records.append(record)
            rows.append([f"T={window}", density,
                         record["total_spikes"], record["dense_ms"],
                         record["scatter_ms"], record["event_ms"],
                         record["auto_ms"], record["speedup"]])

    table = format_table(
        ["window", "input density", "spikes", "dense ms", "scatter ms",
         "event ms", "auto ms", "event speedup"],
        rows, title=f"dense vs event vs auto backend, {SCHEME}, "
                    f"{BATCH}-image micro-VGG batch")
    save_result("event_stream", table + (
        "\n\nThe dense walk pays O(T x neurons) per layer regardless of "
        "activity; the event scatter pays O(events x fan-out), so the "
        "gap widens with the window and with sparsity — the regime the "
        "paper's one-spike coding and sorted-spike hardware live in.  "
        "'scatter' is the historical np.add.at hot path; 'event' runs "
        "compiled plans + segment-sum kernels; 'auto' picks dense or "
        "event per layer from measured spike density."))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "event_stream.json").write_text(
        json.dumps({"schema_version": 2, "batch": BATCH,
                    "rounds": ROUNDS, "records": records}, indent=2) + "\n")

    by_key = {(r["window"], r["input_density"]): r for r in records}
    # Shape criteria: at the T2FSNN-scale window the event backend must
    # win outright on the sparse configuration (observed ~4x locally;
    # 1.5x holds on noisy shared CI runners) and must never lose badly
    # anywhere at T=80 (observed ~2x even fully dense).
    assert by_key[(80, 0.05)]["speedup"] >= 1.5, by_key[(80, 0.05)]
    assert by_key[(80, 1.0)]["speedup"] >= 1.0, by_key[(80, 1.0)]
    # The compiled-plan segment-sum path must beat the old np.add.at
    # scatter where the event backend earns its keep.
    assert by_key[(80, 0.05)]["scatter_speedup"] > 1.0, by_key[(80, 0.05)]
    # Adaptive selection must track the better of the two pure backends
    # on every workload (within timer noise).
    for record in records:
        assert record["auto_vs_best"] <= AUTO_TOLERANCE, record

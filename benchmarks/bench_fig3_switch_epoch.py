"""Fig. 3 — test accuracy vs epoch for different phi_TTFS switch epochs.

The paper trains VGG-16 for 200 epochs (LR /10 at 80/120/160) and
switches the hidden activation to phi_TTFS at epochs {40, 90, 100, 170,
180}: switching while LR > 1e-3 crashes training, switching after the
last LR drop (>= 160) is stable, and epoch 170 is selected.

At bench scale the run is 10 epochs with LR drops at {5, 7, 8}; the
scaled switch epochs {2, 4, 5, 8, 9} mirror the paper's early/late
split (before vs after the final LR drop).
"""

import numpy as np

from repro.analysis import format_series

from conftest import BENCH_EPOCHS, save_result

#: scaled analogues of the paper's {40, 90, 100, 170, 180}
SWITCH_EPOCHS = (2, 4, 5, 8, 9)
LATE_SWITCHES = (8, 9)  # after the final LR drop, like paper's {170, 180}


def test_fig3_switch_epoch_sweep(benchmark, bench_c10):
    """One training run per switch epoch; accuracy curves recorded.

    Bench conditions that elicit the paper's instability at VGG-7 scale:
    a high base LR (0.4) and a very coarse 4-level grid (T=3, tau=0.5).
    At this scale an early switch does not collapse to chance as the
    200-epoch VGG-16 does — the small network partially recovers — but
    it ends with a persistent accuracy deficit, the same ordering the
    paper reports.
    """
    from repro.cat import CATTrainer
    from repro.nn import init as nninit, vgg7
    from conftest import bench_config

    dataset = bench_c10
    histories = {}

    def train_all():
        out = {}
        for switch in SWITCH_EPOCHS:
            nninit.seed(3)
            model = vgg7(num_classes=dataset.num_classes, input_size=16)
            cfg = bench_config(method="I+II+III", window=3, tau=0.5,
                               ttfs_epoch=switch, lr=0.4)
            result = CATTrainer(model, dataset, cfg).run()
            out[switch] = result
        return out

    histories = benchmark.pedantic(train_all, rounds=1, iterations=1)

    curves = {f"switch@{s}": np.round(histories[s].accuracy_curve(), 3)
              for s in SWITCH_EPOCHS}
    table = format_series(list(range(BENCH_EPOCHS)), curves,
                          title=("Fig. 3 test accuracy vs epoch "
                                 "(scaled: LR/10 at 5/7/8; paper switches "
                                 "{40,90,100,170,180} of 200)"),
                          x_label="epoch")

    # Shape criteria: the best final accuracy must come from a late
    # switch (after the final LR drop), and late switches must dominate
    # the early ones on average — the scaled analogue of the paper's
    # "crash below 160 / stable at 170+".
    final_accs = {s: histories[s].final_test_acc for s in SWITCH_EPOCHS}
    early = [final_accs[s] for s in SWITCH_EPOCHS if s not in LATE_SWITCHES]
    late = [final_accs[s] for s in LATE_SWITCHES]
    summary = (
        f"final accuracies: {({k: round(v, 3) for k, v in final_accs.items()})}\n"
        f"(paper: switching at LR>1e-3 crashes VGG-16 training; late "
        f"switches {LATE_SWITCHES} ~ paper's stable 170/180; at bench "
        f"scale the early-switch penalty is a persistent deficit rather "
        f"than a collapse)"
    )
    save_result("fig3_switch_epoch", f"{table}\n\n{summary}")
    assert max(late) >= max(early), final_accs
    assert np.mean(late) >= np.mean(early) - 0.01, final_accs

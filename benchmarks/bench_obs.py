"""Observability overhead: the telemetry layer must cost (almost) nothing.

Four claims, one bench, all expressed as **percent of the work they
ride on** so the numbers transfer across hosts:

* **Disabled path** — with a :class:`~repro.obs.NullRegistry` the
  engine's per-chunk instrumentation is one attribute read and one
  branch.  Counted analytically (touch points x measured per-touch
  cost) against a timed micro ``PipelineRunner.accuracy`` run, the
  same bound ``tests/obs/test_overhead.py`` pins at <2%.
* **Enabled path** — full recording (chunk counters, per-layer spike /
  SOP counters, latency histograms), costed the same analytic way:
  ``record_chunk_metrics`` timed in isolation, scaled by chunk count.
* **Snapshot/merge** — the cross-process delta a worker piggybacks on
  every result pickle: ``snapshot(reset=True)`` plus a parent
  ``merge()``, relative to the chunk work it accompanies.
* **Exposition** — rendering the populated registry to Prometheus
  text (one ``GET /metrics`` scrape), relative to the run that
  produced the series.

Percentages below ``NOISE_FLOOR_PCT`` are reported *as* the floor:
on quiet and noisy hosts alike the claim is "under the floor", and the
committed baseline stays comparable.

Writes ``benchmarks/results/obs.txt`` (human table) and
``benchmarks/results/obs.json`` (machine-readable; diffed against the
committed ``BENCH_obs.json`` by ``compare.py --suite obs``).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.analysis import format_table
from repro.cat import CATConfig, convert, train_cat
from repro.data import make_dataset
from repro.engine import PipelineRunner
from repro.engine.runner import record_chunk_metrics
from repro.nn import init as nninit, vgg_micro
from repro.obs import MetricsRegistry, NullRegistry, render_prometheus
from repro.snn import EventDrivenTTFSNetwork

from conftest import RESULTS_DIR, save_result

ROUNDS = 5                # best-of rounds per timed cell
IMAGES = 24
MAX_BATCH = 4
PROBES = 20_000           # disabled-path touch measurements
#: Measurements under this are timing noise; report the floor instead
#: so the committed baseline is stable across hosts.
NOISE_FLOOR_PCT = 0.5
#: The disabled cell must stay under the contract the tests pin; the
#: cells that do real recording work get a looser ceiling because
#: micro-scale chunks overstate their share — a real chunk is orders
#: of magnitude more work than an 8x8 micro batch, while the recording
#: cost per chunk is fixed.
CEILING_PCT = {
    "runner-disabled": 2.0,
    "runner-enabled": 10.0,
    "snapshot-merge": 10.0,
    "render-scrape": 10.0,
}


@pytest.fixture(scope="module")
def obs_scheme():
    """A micro TTFS network, trained fresh at test scale."""
    dataset = make_dataset(4, 8, train_per_class=30, test_per_class=15,
                           seed=1234, noise_std=0.3)
    config = CATConfig(window=12, tau=2.0, method="I+II+III",
                       epochs=4, relu_epochs=1, ttfs_epoch=3,
                       lr=0.05, milestones=(2, 3), batch_size=32,
                       augment=False, seed=0)
    nninit.seed(7)
    model = vgg_micro(num_classes=dataset.num_classes, input_size=8)
    train_cat(model, dataset, config)
    snn = convert(model, config, calibration=dataset.train_x[:32])
    return EventDrivenTTFSNetwork(snn), dataset


def _best(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _floored_pct(pct: float) -> float:
    return round(max(pct, NOISE_FLOOR_PCT), 2)


def test_obs_overhead(obs_scheme):
    scheme, dataset = obs_scheme
    x, y = dataset.test_x[:IMAGES], dataset.test_y[:IMAGES]
    chunks = -(-len(x) // MAX_BATCH)

    null_runner = PipelineRunner(scheme, max_batch=MAX_BATCH,
                                 registry=NullRegistry())
    live = MetricsRegistry()
    live_runner = PipelineRunner(scheme, max_batch=MAX_BATCH,
                                 registry=live)
    t_null = _best(lambda: null_runner.accuracy(x, y))
    live_runner.accuracy(x, y)      # populate every series once

    # claim 1: the disabled path, costed analytically like the test
    t0 = time.perf_counter()
    for _ in range(PROBES):
        registry = null_runner.registry \
            if null_runner.registry is not None else None
        if registry.enabled:
            raise AssertionError("null registry reports enabled")
    per_touch_s = (time.perf_counter() - t0) / PROBES
    disabled_pct = 100.0 * chunks * per_touch_s / t_null

    # claim 2: full recording, costed per chunk in isolation (an A/B
    # of two whole runs would be noise-dominated at micro scale)
    sample = scheme.run(x[:MAX_BATCH])
    scratch = MetricsRegistry()
    record_probes = 2_000
    t0 = time.perf_counter()
    for _ in range(record_probes):
        record_chunk_metrics(scratch, scheme, MAX_BATCH, 1e-3, sample)
    per_record_s = (time.perf_counter() - t0) / record_probes
    enabled_pct = 100.0 * chunks * per_record_s / t_null

    # claim 3: one worker delta (snapshot + parent merge) per chunk
    def snapshot_merge():
        parent = MetricsRegistry()
        parent.merge(live.snapshot())
    snapshot_pct = 100.0 * _best(snapshot_merge) / (t_null / chunks)

    # claim 4: one /metrics scrape of the populated registry
    render_pct = 100.0 * _best(lambda: render_prometheus(live)) / t_null

    records = [
        {"case": "runner-disabled", "overhead_pct":
            _floored_pct(disabled_pct),
         "basis": f"{chunks} chunk touches / accuracy({IMAGES})"},
        {"case": "runner-enabled", "overhead_pct":
            _floored_pct(enabled_pct),
         "basis": f"{chunks} recorded chunks / accuracy({IMAGES})"},
        {"case": "snapshot-merge", "overhead_pct":
            _floored_pct(snapshot_pct),
         "basis": "one worker delta vs one chunk"},
        {"case": "render-scrape", "overhead_pct":
            _floored_pct(render_pct),
         "basis": "one Prometheus render vs the run"},
    ]
    for record in records:
        assert record["overhead_pct"] <= CEILING_PCT[record["case"]], \
            record

    rows = [[r["case"], r["overhead_pct"], r["basis"]] for r in records]
    table = format_table(
        ["case", "overhead %", "measured as"], rows,
        title=f"observability overhead, {IMAGES} images, "
              f"max_batch {MAX_BATCH} (floor {NOISE_FLOOR_PCT}%)")
    save_result("obs", table + (
        "\n\nEach cell is telemetry cost as a percent of the work it"
        " instruments; values below the noise floor report the floor."
        " The tests pin the disabled path under "
        f"{CEILING_PCT['runner-disabled']}%; cells that do real"
        " recording work are held under "
        f"{CEILING_PCT['runner-enabled']}% (micro-scale chunks"
        " overstate their share)."))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs.json").write_text(json.dumps(
        {"schema_version": 1, "images": IMAGES, "max_batch": MAX_BATCH,
         "noise_floor_pct": NOISE_FLOOR_PCT, "records": records},
        indent=2) + "\n")

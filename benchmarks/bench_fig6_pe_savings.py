"""Fig. 6 — PE-array area and power savings of the proposed techniques.

Paper numbers (normalised to the T2FSNN-on-SpinalFlow baseline):
step I (CAT unified kernel: decode SRAM -> LUT) saves 12.7% area /
14.7% power; step II (linear PE -> log PE) saves a further 8.1% / 8.6%.
"""

import pytest

from repro.analysis import ascii_bars, paper, paper_vs_measured
from repro.hw import fig6_design_points

from conftest import save_result

TOL = 0.025  # |measured - paper| tolerance in fraction-of-baseline


def test_fig6_pe_array_savings(benchmark):
    result = benchmark(fig6_design_points)

    rows = [
        {"metric": "area saving I (CAT)",
         "paper": paper.FIG6["area_saving_cat"],
         "measured": round(result.area_saving_cat, 4)},
        {"metric": "area saving II (log PE)",
         "paper": paper.FIG6["area_saving_log"],
         "measured": round(result.area_saving_log, 4)},
        {"metric": "power saving I (CAT)",
         "paper": paper.FIG6["power_saving_cat"],
         "measured": round(result.power_saving_cat, 4)},
        {"metric": "power saving II (log PE)",
         "paper": paper.FIG6["power_saving_log"],
         "measured": round(result.power_saving_log, 4)},
    ]
    table = paper_vs_measured(rows, keys=("metric",))
    series = result.normalized_series()
    bars = (ascii_bars(series["area"], title="normalised PE-array area")
            + "\n\n" + ascii_bars(series["power"],
                                  title="normalised PE-array power"))
    save_result("fig6_pe_savings", f"{table}\n\n{bars}")

    # Shape: strictly decreasing Base -> I -> I+II on both metrics.
    assert result.base.area_um2 > result.cat.area_um2 > result.cat_log.area_um2
    assert result.base.power_mw > result.cat.power_mw > result.cat_log.power_mw
    # Quantitative: within TOL of the paper's synthesis results.
    assert result.area_saving_cat == pytest.approx(
        paper.FIG6["area_saving_cat"], abs=TOL)
    assert result.area_saving_log == pytest.approx(
        paper.FIG6["area_saving_log"], abs=TOL)
    assert result.power_saving_cat == pytest.approx(
        paper.FIG6["power_saving_cat"], abs=TOL)
    assert result.power_saving_log == pytest.approx(
        paper.FIG6["power_saving_log"], abs=TOL)


def test_fig6_savings_scale_with_layer_count(benchmark):
    """Ablation: the baseline's decode-SRAM cost (and hence step-I
    saving) grows with the number of per-layer kernels it must store."""
    from repro.hw import baseline_config, pe_array_report, proposed_config

    def sweep():
        out = {}
        for layers in (8, 16, 32):
            base = pe_array_report(baseline_config().with_(
                num_layer_kernels=layers))
            cat = pe_array_report(proposed_config())
            out[layers] = 1.0 - cat.area_um2 / base.area_um2
        return out

    savings = benchmark(sweep)
    assert savings[8] < savings[16] < savings[32]
    save_result(
        "fig6_layer_sweep",
        "step-I area saving vs baseline kernel-table depth:\n" + "\n".join(
            f"  {n} layer kernels: {s:.3f}" for n, s in savings.items()),
    )

"""Sec. 4.1 microbenchmarks: spike encoder and min-find sorting unit.

Not a paper table, but the two blocks whose behaviour the paper
describes cycle-by-cycle; these benches measure the simulation
throughput and validate the cycle model trends used by Table 4.
"""

import numpy as np

from repro.cat import Base2Kernel
from repro.hw import HwConfig, MinFindUnit, SpikeEncoder
from repro.snn import encode_values

from conftest import save_result


def test_encoder_throughput(benchmark, rng=np.random.default_rng(0)):
    enc = SpikeEncoder(HwConfig())
    vmems = rng.random(128)
    result = benchmark(enc.encode, vmems)
    assert result.num_spikes > 0
    assert result.cycles >= result.num_spikes


def test_encoder_cycle_scaling(benchmark):
    """Cycles grow ~linearly with the number of firing neurons."""
    enc = SpikeEncoder(HwConfig(window=24, tau=4.0))
    rng = np.random.default_rng(1)

    def sweep():
        cycles = {}
        for frac in (0.25, 0.5, 1.0):
            vmems = np.where(rng.random(128) < frac, rng.random(128), -1.0)
            cycles[frac] = enc.encode(vmems).cycles
        return cycles

    cycles = benchmark(sweep)
    assert cycles[0.25] <= cycles[0.5] <= cycles[1.0]
    save_result(
        "encoder_micro",
        "encoder cycles vs firing fraction (128 neurons, T=24):\n"
        + "\n".join(f"  {frac:.2f}: {c}" for frac, c in cycles.items()),
    )


def test_minfind_sort_throughput(benchmark):
    rng = np.random.default_rng(2)
    values = rng.random((4, 3, 8, 8))
    train = encode_values(values, Base2Kernel(tau=4.0), window=24)
    unit = MinFindUnit(ways=16)

    result = benchmark(unit.sort_train, train)
    # one sorted event per cycle after the fill latency
    assert result.cycles == len(result.events) + unit.tree_depth
    times = [t for t, _ in result.events]
    assert times == sorted(times)

"""Fig. 2 — CAT activation functions and their SNN-representation error.

Regenerates both panels at the paper's exact parameters (T=24, tau=4,
theta0=1): the three activation curves over x in [0, 1.2] and each
activation's deviation from the TTFS spike-time grid.  Asserts the
figure's headline property — phi_TTFS is exactly representation-error
free while clip and ReLU are not.
"""

import numpy as np

from repro.analysis import format_series
from repro.cat import activation_curves

from conftest import save_result


def test_fig2_curves(benchmark):
    curves = benchmark(activation_curves, window=24, tau=4.0, theta0=1.0,
                       x_max=1.2, num_points=481)

    # Shape criteria (Fig. 2b)
    assert curves.max_error("ttfs") == 0.0
    assert curves.max_error("clip") > 0.0
    assert curves.max_error("relu") >= curves.max_error("clip")
    assert (curves.mean_error("ttfs") < curves.mean_error("clip")
            < curves.mean_error("relu"))

    # Emit the figure data at a plot-friendly sampling.
    idx = np.linspace(0, len(curves.inputs) - 1, 13).astype(int)
    table_a = format_series(
        np.round(curves.inputs[idx], 3),
        {k: np.round(v[idx], 4) for k, v in curves.activations.items()},
        title="Fig. 2(a) activations (T=24, tau=4, theta0=1)", x_label="x")
    table_b = format_series(
        np.round(curves.inputs[idx], 3),
        {k: np.round(v[idx], 4) for k, v in curves.errors.items()},
        title="Fig. 2(b) |activation - SNN representation|", x_label="x")
    summary = (f"max errors: ttfs={curves.max_error('ttfs'):.4f} "
               f"clip={curves.max_error('clip'):.4f} "
               f"relu={curves.max_error('relu'):.4f} "
               "(paper: ttfs error is exactly 0)")
    save_result("fig2_activations", f"{table_a}\n\n{table_b}\n\n{summary}")


def test_fig2_error_grows_as_tau_shrinks(benchmark):
    """Sec. 3.1: conversion-error pressure rises for small T/tau — the
    reason Table 1's losses explode at 12/2."""
    def sweep():
        return {tau: activation_curves(window=int(6 * tau), tau=tau)
                for tau in (8.0, 4.0, 2.0)}

    curves_by_tau = benchmark(sweep)
    clip_errors = [curves_by_tau[tau].mean_error("clip")
                   for tau in (8.0, 4.0, 2.0)]
    assert clip_errors[0] < clip_errors[1] < clip_errors[2]
    save_result(
        "fig2_tau_sweep",
        "mean clip-activation coding error by tau (T = 6*tau):\n"
        + "\n".join(f"  tau={tau:g}: {err:.5f}"
                    for tau, err in zip((8.0, 4.0, 2.0), clip_errors)),
    )

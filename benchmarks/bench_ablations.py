"""Design-choice ablations called out in DESIGN.md §6.

1. **Early firing** — T2FSNN's latency trick applied naively to a CAT
   model: latency halves, accuracy collapses.  This quantifies why the
   paper's design keeps integrate and fire phases separate.
2. **PTQ vs QAT** — the paper's Sec. 5 remark: quantisation-aware
   training recovers the accuracy lost by post-training quantisation at
   low bit widths.
"""

import copy

import numpy as np

from repro.analysis import format_table
from repro.cat import convert
from repro.quant import LogQuantConfig, qat_finetune, quantize_snn
from repro.snn import EventDrivenTTFSNetwork

from conftest import save_result


def test_early_firing_ablation(benchmark, cat_full_snn, bench_c10):
    normal = EventDrivenTTFSNetwork(cat_full_snn)
    early = EventDrivenTTFSNetwork(cat_full_snn, early_firing=True)

    def run_both():
        x, y = bench_c10.test_x, bench_c10.test_y
        rn = normal.run(x)
        re = early.run(x)
        return {
            "normal": ((rn.predictions() == y).mean(), rn.latency_timesteps),
            "early": ((re.predictions() == y).mean(), re.latency_timesteps),
        }

    res = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = format_table(
        ["mode", "accuracy", "latency (timesteps)"],
        [[k, round(v[0], 3), v[1]] for k, v in res.items()],
        title="early-firing ablation on the CAT model")
    save_result("ablation_early_firing", table + (
        "\n\nconclusion: naive early firing halves latency but breaks the "
        "exact-coding property CAT trained for — the paper instead shrinks "
        "T (Table 2: 408 < 680) and keeps phases separate."))

    assert res["early"][1] == res["normal"][1] // 2
    assert res["early"][0] <= res["normal"][0]


def test_ptq_vs_qat_ablation(benchmark, cat_full_model, bench_c10):
    """Sec. 5: QAT 'can be improved' over PTQ — measure the recovery."""
    model, cfg = cat_full_model
    qcfg = LogQuantConfig(bits=3, z_w=0)  # harsh 3-level quantisation

    snn = convert(model, cfg)
    fp_acc = snn.accuracy(bench_c10.test_x, bench_c10.test_y)
    ptq, _ = quantize_snn(snn, qcfg)
    ptq_acc = ptq.accuracy(bench_c10.test_x, bench_c10.test_y)

    def finetune_and_eval():
        tuned = copy.deepcopy(model)
        qat_finetune(tuned, bench_c10, qcfg, cat_config=cfg,
                     epochs=3, lr=2e-3)
        qat_snn, _ = quantize_snn(convert(tuned, cfg), qcfg)
        return qat_snn.accuracy(bench_c10.test_x, bench_c10.test_y)

    qat_acc = benchmark.pedantic(finetune_and_eval, rounds=1, iterations=1)

    table = format_table(
        ["weights", "accuracy"],
        [["fp32", round(fp_acc, 3)],
         ["3-bit PTQ", round(ptq_acc, 3)],
         ["3-bit QAT (3 epochs)", round(qat_acc, 3)]],
        title="PTQ vs QAT at 3-bit log weights (paper Sec. 5 extension)")
    save_result("ablation_ptq_vs_qat", table)

    assert qat_acc >= ptq_acc - 0.01
    # QAT recovers at least a third of the PTQ gap when there is one.
    gap = fp_acc - ptq_acc
    if gap > 0.05:
        assert qat_acc >= ptq_acc + gap / 3

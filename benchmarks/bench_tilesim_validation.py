"""Cross-validation of the hardware models (Sec. 4 fidelity checks).

1. **Tile-level vs analytic cycles** — the Table 4 performance model is
   analytic; the tile-level simulator executes the same network through
   the real encoder FSM and per-tile streaming.  Their cycle counts must
   agree to first order.
2. **Fixed-point datapath accuracy** — run the bench model through the
   integer log-PE datapath at the paper's design point (5-bit weights,
   a_w=2^-1/2) and measure prediction agreement against float.
3. **Weight-buffer mapping** — confirm the 4x90KB buffers hold every
   VGG-16 tile working set exactly (the 512-channel layers use 100%).
"""

import numpy as np

from repro.analysis import format_table
from repro.hw import (
    FixedPointInference,
    SNNProcessor,
    TiledCycleModel,
    geometry_from_converted,
    map_network,
    profile_from_simulation,
    vgg16_geometry,
)
from repro.quant import LogQuantConfig, quantize_snn
from repro.snn import EventDrivenTTFSNetwork

from conftest import save_result


def test_tiled_vs_analytic_cycles(benchmark, cat_full_snn, bench_c10):
    image = bench_c10.test_x[0]
    tiled = TiledCycleModel(cat_full_snn)

    tiled_report = benchmark.pedantic(tiled.run_image, args=(image,),
                                      rounds=1, iterations=1)

    sim = EventDrivenTTFSNetwork(cat_full_snn).run(bench_c10.test_x[:1])
    geo = geometry_from_converted(cat_full_snn, bench_c10.test_x[:1].shape)
    analytic = SNNProcessor().run(geo, profile_from_simulation(sim))

    ratio = tiled_report.total_cycles / analytic.total_cycles
    table = format_table(
        ["model", "cycles/image"],
        [["tile-level (real encoder FSM)", tiled_report.total_cycles],
         ["analytic (Table 4 model)", analytic.total_cycles],
         ["ratio", round(ratio, 2)]],
        title="cycle-model cross-validation (bench VGG-7)")
    save_result("tilesim_cycles", table + (
        "\n\nnote: the tile simulator uses a static channel-major "
        "mapping, which re-streams row halos when C_out < 128; "
        "SpinalFlow's spike-driven broadcast (the analytic model) "
        "converges with it once layers have >= 128 output channels, "
        "as VGG-16's do.  The bench VGG-7 (16-64 channels) sits in the "
        "inefficient regime, hence the gap."))
    # same order of magnitude; tight agreement needs >= 128-channel layers
    assert 0.1 < ratio < 8.0


def test_fixed_point_datapath_accuracy(benchmark, cat_full_snn, bench_c10):
    wcfg = LogQuantConfig(bits=5, z_w=1, align_fsr=True)
    qsnn, _ = quantize_snn(cat_full_snn, wcfg)
    fp = FixedPointInference(qsnn, weight_config=wcfg, precision_bits=20)

    report = benchmark.pedantic(fp.run, args=(bench_c10.test_x[:60],),
                                rounds=1, iterations=1)
    float_acc = float((report.reference_predictions
                       == bench_c10.test_y[:60]).mean())
    fixed_acc = float((report.predictions == bench_c10.test_y[:60]).mean())
    table = format_table(
        ["path", "accuracy"],
        [["float (quantised weights)", round(float_acc, 3)],
         ["integer LUT+shift datapath", round(fixed_acc, 3)],
         ["prediction agreement", round(report.agreement, 3)],
         ["max membrane drift", round(report.max_membrane_drift, 4)]],
        title="fixed-point log-PE datapath at the paper's design point")
    save_result("tilesim_fixed_point", table)
    assert report.agreement >= 0.95


def test_weight_buffer_mapping(benchmark):
    report = benchmark(map_network, vgg16_geometry(32, 10))
    rows = report.summary_rows()
    table = format_table(
        ["layer", "tile KB", "utilisation", "passes", "fits"],
        rows, title="VGG-16 weight-buffer mapping (4 x 90 KB)")
    worst = max(report.layers, key=lambda m: m.buffer_utilization)
    save_result("tilesim_mapping", table + (
        f"\n\nworst layer {worst.name}: utilisation "
        f"{worst.buffer_utilization:.2f} — the 90 KB buffers are exactly "
        "sized for 512-channel 3x3 layers at 5-bit weights "
        "(512*9*128*5b = 360 KB)."))
    assert report.all_fit
    assert worst.buffer_utilization == 1.0
